// Package metrics holds the result types the benchmark harness
// produces: named series of (x, y) points, tables that render as
// aligned text (gnuplot-style columns), and quick ASCII plots for
// terminal inspection of the regenerated figures.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Point is one measurement: X is usually a message size in bytes, Y a
// throughput (MiB/s), time (µs) or percentage.
type Point struct {
	X float64
	Y float64
}

// Series is a named curve.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{X: x, Y: y}) }

// Clone returns an independent copy of the series, so shared results
// (e.g. cached sweep curves) can be handed out without aliasing.
func (s *Series) Clone() *Series {
	if s == nil {
		return nil
	}
	return &Series{Name: s.Name, Points: append([]Point(nil), s.Points...)}
}

// At returns the Y value at exactly x (and whether it exists).
func (s *Series) At(x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// Max returns the largest Y in the series (0 for an empty series).
func (s *Series) Max() float64 {
	m := 0.0
	for _, p := range s.Points {
		if p.Y > m {
			m = p.Y
		}
	}
	return m
}

// Equal reports whether two series carry the same name and exactly
// the same points. The simulations are deterministic, so a figure
// regenerated twice — serially or in parallel — must compare equal
// bit for bit; any difference means runs leaked state into each other.
func (s *Series) Equal(o *Series) bool {
	if s == nil || o == nil {
		return s == o
	}
	if s.Name != o.Name || len(s.Points) != len(o.Points) {
		return false
	}
	for i, p := range s.Points {
		if p != o.Points[i] {
			return false
		}
	}
	return true
}

// Table is a complete figure: several series over a shared X axis.
type Table struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// NewTable returns an empty table.
func NewTable(title, xlabel, ylabel string) *Table {
	return &Table{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// AddSeries creates, attaches and returns a new series.
func (t *Table) AddSeries(name string) *Series {
	s := &Series{Name: name}
	t.Series = append(t.Series, s)
	return s
}

// Equal reports whether two tables have identical metadata and
// series (see Series.Equal).
func (t *Table) Equal(o *Table) bool {
	if t == nil || o == nil {
		return t == o
	}
	if t.Title != o.Title || t.XLabel != o.XLabel || t.YLabel != o.YLabel ||
		len(t.Series) != len(o.Series) {
		return false
	}
	for i, s := range t.Series {
		if !s.Equal(o.Series[i]) {
			return false
		}
	}
	return true
}

// Get returns the series with the given name, or nil.
func (t *Table) Get(name string) *Series {
	for _, s := range t.Series {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// xs returns the sorted union of X values across all series.
func (t *Table) xs() []float64 {
	set := map[float64]bool{}
	for _, s := range t.Series {
		for _, p := range s.Points {
			set[p.X] = true
		}
	}
	var out []float64
	for x := range set {
		out = append(out, x)
	}
	sort.Float64s(out)
	return out
}

// SizeLabel formats a byte count the way the paper's axes do.
func SizeLabel(v float64) string {
	switch {
	case v >= 1<<20:
		if v == math.Trunc(v/(1<<20))*(1<<20) {
			return fmt.Sprintf("%.0fMB", v/(1<<20))
		}
		return fmt.Sprintf("%.1fMB", v/(1<<20))
	case v >= 1024:
		if v == math.Trunc(v/1024)*1024 {
			return fmt.Sprintf("%.0fkB", v/1024)
		}
		return fmt.Sprintf("%.1fkB", v/1024)
	default:
		return fmt.Sprintf("%.0fB", v)
	}
}

// Render produces an aligned text table: one row per X value, one
// column per series.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", t.Title)
	fmt.Fprintf(&b, "# x: %s   y: %s\n", t.XLabel, t.YLabel)
	xs := t.xs()
	// Header.
	fmt.Fprintf(&b, "%-10s", t.XLabel)
	for _, s := range t.Series {
		fmt.Fprintf(&b, " %22s", s.Name)
	}
	b.WriteByte('\n')
	for _, x := range xs {
		fmt.Fprintf(&b, "%-10s", SizeLabel(x))
		for _, s := range t.Series {
			if y, ok := s.At(x); ok {
				fmt.Fprintf(&b, " %22.1f", y)
			} else {
				fmt.Fprintf(&b, " %22s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ASCIIPlot draws the table as a log-x ASCII chart (useful for a quick
// visual check of a regenerated figure in the terminal).
func (t *Table) ASCIIPlot(width, height int) string {
	xs := t.xs()
	if len(xs) == 0 || width < 20 || height < 5 {
		return "(no data)\n"
	}
	ymax := 0.0
	for _, s := range t.Series {
		if m := s.Max(); m > ymax {
			ymax = m
		}
	}
	if ymax == 0 {
		ymax = 1
	}
	lx0, lx1 := math.Log2(xs[0]), math.Log2(xs[len(xs)-1])
	if lx1 == lx0 {
		lx1 = lx0 + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	marks := "ox+*#@%&"
	for si, s := range t.Series {
		mark := marks[si%len(marks)]
		for _, p := range s.Points {
			if p.X <= 0 {
				continue
			}
			col := int((math.Log2(p.X) - lx0) / (lx1 - lx0) * float64(width-1))
			row := height - 1 - int(p.Y/ymax*float64(height-1))
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = mark
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (ymax=%.0f %s)\n", t.Title, ymax, t.YLabel)
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString("+" + strings.Repeat("-", width) + "\n")
	var legend []string
	for si, s := range t.Series {
		legend = append(legend, fmt.Sprintf("%c=%s", marks[si%len(marks)], s.Name))
	}
	b.WriteString(" " + strings.Join(legend, "  ") + "\n")
	return b.String()
}

// Compare is a paper-vs-measured record used by EXPERIMENTS.md
// generation and the figure smoke tests.
type Compare struct {
	What     string
	Paper    float64
	Measured float64
	Unit     string
}

// String renders the comparison with the relative deviation.
func (c Compare) String() string {
	dev := 0.0
	if c.Paper != 0 {
		dev = (c.Measured/c.Paper - 1) * 100
	}
	return fmt.Sprintf("%-46s paper=%10.1f %-7s measured=%10.1f (%+.0f%%)", c.What, c.Paper, c.Unit, c.Measured, dev)
}
