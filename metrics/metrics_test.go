package metrics

import (
	"math"
	"strings"
	"testing"
)

func sample() *Table {
	t := NewTable("demo", "msgsize", "MiB/s")
	a := t.AddSeries("alpha")
	a.Add(1024, 100)
	a.Add(2048, 200)
	b := t.AddSeries("beta")
	b.Add(1024, 50)
	b.Add(4096, 300)
	return t
}

func TestSeriesAtAndMax(t *testing.T) {
	tab := sample()
	if v, ok := tab.Get("alpha").At(2048); !ok || v != 200 {
		t.Fatalf("At = %v,%v", v, ok)
	}
	if _, ok := tab.Get("alpha").At(999); ok {
		t.Fatal("missing point reported present")
	}
	if m := tab.Get("beta").Max(); m != 300 {
		t.Fatalf("Max = %v", m)
	}
	if tab.Get("nope") != nil {
		t.Fatal("missing series found")
	}
}

func TestRenderContainsAllRowsAndColumns(t *testing.T) {
	out := sample().Render()
	for _, want := range []string{"demo", "alpha", "beta", "1kB", "2kB", "4kB", "200.0", "300.0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Missing cells render as "-".
	if !strings.Contains(out, "-") {
		t.Fatal("missing-cell marker absent")
	}
}

func TestSizeLabel(t *testing.T) {
	cases := map[float64]string{
		16:       "16B",
		1024:     "1kB",
		131072:   "128kB",
		1 << 20:  "1MB",
		16 << 20: "16MB",
		1536:     "1.5kB",
	}
	for in, want := range cases {
		if got := SizeLabel(in); got != want {
			t.Fatalf("SizeLabel(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestASCIIPlotBasics(t *testing.T) {
	out := sample().ASCIIPlot(60, 10)
	if !strings.Contains(out, "demo") || !strings.Contains(out, "o=alpha") {
		t.Fatalf("plot missing header/legend:\n%s", out)
	}
	if strings.Count(out, "\n") < 10 {
		t.Fatal("plot too short")
	}
	// Degenerate input must not panic.
	empty := NewTable("empty", "x", "y").ASCIIPlot(60, 10)
	if !strings.Contains(empty, "no data") {
		t.Fatal("empty plot not handled")
	}
}

func TestCompareString(t *testing.T) {
	c := Compare{What: "throughput", Paper: 800, Measured: 824, Unit: "MiB/s"}
	s := c.String()
	if !strings.Contains(s, "+3%") || !strings.Contains(s, "throughput") {
		t.Fatalf("compare rendering: %s", s)
	}
}

func TestTableEqual(t *testing.T) {
	mk := func() *Table {
		tab := NewTable("t", "x", "y")
		s := tab.AddSeries("a")
		s.Add(1, 2)
		s.Add(2, 4)
		tab.AddSeries("b").Add(1, 3)
		return tab
	}
	a, b := mk(), mk()
	if !a.Equal(b) {
		t.Fatal("identical tables compare unequal")
	}
	b.Series[0].Points[1].Y = 4.0000001
	if a.Equal(b) {
		t.Fatal("tables differing by one Y compare equal")
	}
	c := mk()
	c.Title = "other"
	if a.Equal(c) {
		t.Fatal("tables differing in title compare equal")
	}
	d := mk()
	d.Series[1].Name = "renamed"
	if a.Equal(d) {
		t.Fatal("tables differing in series name compare equal")
	}
	if !(*Table)(nil).Equal(nil) || a.Equal(nil) {
		t.Fatal("nil handling wrong")
	}
	if !(*Series)(nil).Equal(nil) || a.Series[0].Equal(nil) {
		t.Fatal("nil series handling wrong")
	}
}

// NaN poisons equality on purpose: the determinism guardrails compare
// regenerated figures bit for bit, and a NaN in a series means some
// computation produced garbage — two such runs must never be declared
// "equal", even when the garbage is identical, so the guardrail trips
// and the figure gets fixed rather than golden-ed.
func TestSeriesEqualNaN(t *testing.T) {
	mk := func() *Series {
		s := &Series{Name: "n"}
		s.Add(1, math.NaN())
		return s
	}
	a, b := mk(), mk()
	if a.Equal(b) {
		t.Fatal("series containing NaN compared equal")
	}
	if a.Equal(a) {
		t.Fatal("NaN series compared equal to itself")
	}
	// NaN in X poisons too.
	c := &Series{Name: "n"}
	c.Add(math.NaN(), 1)
	if c.Equal(c) {
		t.Fatal("NaN X compared equal")
	}
	// Signed zero is the same value (0 == -0 in IEEE comparison): two
	// runs producing differently signed zeros still agree numerically.
	z1 := &Series{Name: "z"}
	z1.Add(1, 0)
	z2 := &Series{Name: "z"}
	z2.Add(1, math.Copysign(0, -1))
	if !z1.Equal(z2) {
		t.Fatal("0 and -0 compared unequal")
	}
}

func TestSeriesEqualLengthMismatch(t *testing.T) {
	a := &Series{Name: "s"}
	a.Add(1, 10)
	a.Add(2, 20)
	prefix := &Series{Name: "s"}
	prefix.Add(1, 10)
	if a.Equal(prefix) || prefix.Equal(a) {
		t.Fatal("prefix series compared equal (either direction)")
	}
	empty := &Series{Name: "s"}
	if a.Equal(empty) || !empty.Equal(&Series{Name: "s"}) {
		t.Fatal("empty-series handling wrong")
	}
	// Same points, different order: unequal — point order is part of
	// the result (sweeps emit in deterministic sweep order).
	ab := &Series{Name: "s"}
	ab.Add(1, 10)
	ab.Add(2, 20)
	ba := &Series{Name: "s"}
	ba.Add(2, 20)
	ba.Add(1, 10)
	if ab.Equal(ba) {
		t.Fatal("reordered points compared equal")
	}
}

// Label drift: a renamed series or relabelled axis is a real figure
// change (legends are part of the committed golden) and must show up
// as inequality even when every number matches.
func TestEqualLabelDrift(t *testing.T) {
	a := &Series{Name: "Open-MX"}
	a.Add(1, 1)
	b := &Series{Name: "Open-MX I/OAT"}
	b.Add(1, 1)
	if a.Equal(b) {
		t.Fatal("renamed series compared equal")
	}
	mk := func() *Table {
		tab := NewTable("t", "msgsize", "MiB/s")
		tab.AddSeries("a").Add(1, 1)
		return tab
	}
	x := mk()
	xl := mk()
	xl.XLabel = "bytes"
	yl := mk()
	yl.YLabel = "GiB/s"
	if x.Equal(xl) || x.Equal(yl) {
		t.Fatal("tables differing only in axis labels compared equal")
	}
	// Same series under a different count: unequal both ways.
	extra := mk()
	extra.AddSeries("b")
	if x.Equal(extra) || extra.Equal(x) {
		t.Fatal("series-count mismatch compared equal")
	}
}
