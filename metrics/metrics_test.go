package metrics

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := NewTable("demo", "msgsize", "MiB/s")
	a := t.AddSeries("alpha")
	a.Add(1024, 100)
	a.Add(2048, 200)
	b := t.AddSeries("beta")
	b.Add(1024, 50)
	b.Add(4096, 300)
	return t
}

func TestSeriesAtAndMax(t *testing.T) {
	tab := sample()
	if v, ok := tab.Get("alpha").At(2048); !ok || v != 200 {
		t.Fatalf("At = %v,%v", v, ok)
	}
	if _, ok := tab.Get("alpha").At(999); ok {
		t.Fatal("missing point reported present")
	}
	if m := tab.Get("beta").Max(); m != 300 {
		t.Fatalf("Max = %v", m)
	}
	if tab.Get("nope") != nil {
		t.Fatal("missing series found")
	}
}

func TestRenderContainsAllRowsAndColumns(t *testing.T) {
	out := sample().Render()
	for _, want := range []string{"demo", "alpha", "beta", "1kB", "2kB", "4kB", "200.0", "300.0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Missing cells render as "-".
	if !strings.Contains(out, "-") {
		t.Fatal("missing-cell marker absent")
	}
}

func TestSizeLabel(t *testing.T) {
	cases := map[float64]string{
		16:       "16B",
		1024:     "1kB",
		131072:   "128kB",
		1 << 20:  "1MB",
		16 << 20: "16MB",
		1536:     "1.5kB",
	}
	for in, want := range cases {
		if got := SizeLabel(in); got != want {
			t.Fatalf("SizeLabel(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestASCIIPlotBasics(t *testing.T) {
	out := sample().ASCIIPlot(60, 10)
	if !strings.Contains(out, "demo") || !strings.Contains(out, "o=alpha") {
		t.Fatalf("plot missing header/legend:\n%s", out)
	}
	if strings.Count(out, "\n") < 10 {
		t.Fatal("plot too short")
	}
	// Degenerate input must not panic.
	empty := NewTable("empty", "x", "y").ASCIIPlot(60, 10)
	if !strings.Contains(empty, "no data") {
		t.Fatal("empty plot not handled")
	}
}

func TestCompareString(t *testing.T) {
	c := Compare{What: "throughput", Paper: 800, Measured: 824, Unit: "MiB/s"}
	s := c.String()
	if !strings.Contains(s, "+3%") || !strings.Contains(s, "throughput") {
		t.Fatalf("compare rendering: %s", s)
	}
}

func TestTableEqual(t *testing.T) {
	mk := func() *Table {
		tab := NewTable("t", "x", "y")
		s := tab.AddSeries("a")
		s.Add(1, 2)
		s.Add(2, 4)
		tab.AddSeries("b").Add(1, 3)
		return tab
	}
	a, b := mk(), mk()
	if !a.Equal(b) {
		t.Fatal("identical tables compare unequal")
	}
	b.Series[0].Points[1].Y = 4.0000001
	if a.Equal(b) {
		t.Fatal("tables differing by one Y compare equal")
	}
	c := mk()
	c.Title = "other"
	if a.Equal(c) {
		t.Fatal("tables differing in title compare equal")
	}
	d := mk()
	d.Series[1].Name = "renamed"
	if a.Equal(d) {
		t.Fatal("tables differing in series name compare equal")
	}
	if !(*Table)(nil).Equal(nil) || a.Equal(nil) {
		t.Fatal("nil handling wrong")
	}
	if !(*Series)(nil).Equal(nil) || a.Series[0].Equal(nil) {
		t.Fatal("nil series handling wrong")
	}
}
