package sim

// The calendar event queue: a timing wheel over the near future plus a
// small binary heap for far-out timers, replacing the single
// container/heap of the original engine. The motivation is the
// 64-512-rank fat-tree worlds: at that scale the simulator spends most
// of its wall time inside the event queue, and a binary heap pays
// O(log n) pointer-chasing compares per operation where the wheel pays
// O(1) appends and pops.
//
//   - Events due within wheelHorizon of the wheel base land in one of
//     wheelBuckets fixed-width buckets, each a small slice kept sorted
//     by (at, seq). Nearly every insert is a tail append (times are
//     mostly nondecreasing within a bucket's 64 ns window) and every
//     pop is a head read through a cursor, so the steady state touches
//     no allocator at all.
//   - Events beyond the horizon (retransmit timers, experiment
//     deadlines) go to a local min-heap ordered by the same (at, seq)
//     key. As the wheel base advances, newly covered far events
//     migrate into the freshly vacated buckets, preserving the
//     invariant that every event in the far heap is at least one full
//     horizon away.
//   - Event structs are pooled: a freelist over chunk-allocated slabs,
//     with a generation counter so a Timer held across the event's
//     recycling can never cancel an unrelated reuse.
//
// Ordering is the same total order as the original heap — (at, seq),
// seq strictly increasing per engine — so every simulation trajectory,
// and therefore every committed golden figure, is bit-identical.

import "math/bits"

const (
	wheelShift   = 6    // log2 bucket width: 64 ns per bucket
	wheelBuckets = 4096 // must be a power of two
	wheelMask    = wheelBuckets - 1
	bucketWidth  = Time(1) << wheelShift
	wheelHorizon = Time(wheelBuckets) << wheelShift // ≈262 µs of coverage
	eventChunk   = 256                              // events allocated per slab
)

// event is a scheduled callback or process step. fn and proc are
// mutually exclusive: proc events step the process directly, so the
// proc hot path (Sleep/Yield/wake) schedules without building a
// closure.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	proc *Proc
	// wakeup distinguishes the two closure-free proc event kinds: a
	// wake event runs proc.wake (the timer half of Sleep/Yield, which
	// itself files a step event), a step event resumes the goroutine.
	// Keeping both hops preserves the exact event interleaving of the
	// original closure-based engine, so trajectories are bit-identical.
	wakeup    bool
	gen       uint32 // bumped on recycle; Timers holding an older gen are stale
	cancelled bool
	next      *event // freelist link
}

// before reports whether e fires before o in the engine's total order.
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// bucket is one wheel slot: evs[head:] is live, sorted by (at, seq).
type bucket struct {
	evs  []*event
	head int
}

// calq is the calendar queue. The zero value is ready to use (base 0).
type calq struct {
	buckets [wheelBuckets]bucket
	occ     [wheelBuckets / 64]uint64 // per-bucket non-empty bitmap
	base    Time                      // start of buckets[baseIdx]'s window (multiple of bucketWidth)
	baseIdx int
	wheelN  int      // events currently in the wheel (cancelled included)
	far     []*event // min-heap by (at, seq): everything ≥ base+wheelHorizon
	free    *event   // recycled-event freelist
}

// alloc hands out a pooled event, growing the slab only when the
// freelist is empty (steady-state schedules never reach the allocator).
func (q *calq) alloc() *event {
	if q.free == nil {
		chunk := make([]event, eventChunk)
		for i := range chunk {
			chunk[i].next = q.free
			q.free = &chunk[i]
		}
	}
	ev := q.free
	q.free = ev.next
	ev.next = nil
	return ev
}

// recycle returns a popped event to the pool. The generation bump
// invalidates every Timer that still points here.
func (q *calq) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.proc = nil
	ev.wakeup = false
	ev.cancelled = false
	ev.next = q.free
	q.free = ev
}

// push files an event. The caller guarantees ev.at ≥ the engine clock,
// which in turn is ≥ q.base.
func (q *calq) push(ev *event) {
	if ev.at < q.base+wheelHorizon {
		q.pushWheel(ev)
		return
	}
	q.far = append(q.far, ev)
	q.siftUp(len(q.far) - 1)
}

// pushWheel slots an event into its bucket, keeping the bucket sorted
// by (at, seq). seq grows monotonically, so an event whose time is not
// earlier than the current tail simply appends — the common case.
func (q *calq) pushWheel(ev *event) {
	idx := int(ev.at>>wheelShift) & wheelMask
	b := &q.buckets[idx]
	b.evs = append(b.evs, ev)
	for i := len(b.evs) - 1; i > b.head && b.evs[i].before(b.evs[i-1]); i-- {
		b.evs[i], b.evs[i-1] = b.evs[i-1], b.evs[i]
	}
	q.occ[idx>>6] |= 1 << (idx & 63)
	q.wheelN++
}

// pop removes and returns the earliest live event, or nil when the
// queue is empty. Cancelled events are recycled on the way.
func (q *calq) pop() *event {
	for {
		ev := q.peek()
		if ev == nil {
			return nil
		}
		q.remove()
		if ev.cancelled {
			q.recycle(ev)
			continue
		}
		return ev
	}
}

// peek positions the wheel on the earliest event and returns it
// without removing it (nil when empty). Advancing the base and
// migrating far events are side effects that never change firing
// order, so peek is safe to call at any point.
func (q *calq) peek() *event {
	if q.wheelN == 0 {
		if len(q.far) == 0 {
			return nil
		}
		// Wheel drained: jump the base straight to the earliest far
		// event and pull everything newly covered into the wheel.
		q.base = q.far[0].at &^ (bucketWidth - 1)
		q.baseIdx = int(q.base>>wheelShift) & wheelMask
		q.migrate()
	}
	// Find the next occupied bucket at or after baseIdx. All wheel
	// events live within one horizon of base, so the first occupied
	// bucket in cyclic order holds the minimum.
	idx := q.nextOccupied(q.baseIdx)
	if steps := (idx - q.baseIdx + wheelBuckets) & wheelMask; steps > 0 {
		// The skipped buckets are empty; advancing the base over them
		// extends the horizon, so far events may now be due.
		q.base += Time(steps) << wheelShift
		q.baseIdx = idx
		q.migrate()
	}
	b := &q.buckets[idx]
	return b.evs[b.head]
}

// remove discards the event peek returned (the head of the base
// bucket).
func (q *calq) remove() {
	b := &q.buckets[q.baseIdx]
	b.evs[b.head] = nil
	b.head++
	if b.head == len(b.evs) {
		b.evs = b.evs[:0]
		b.head = 0
		q.occ[q.baseIdx>>6] &^= 1 << (q.baseIdx & 63)
	}
	q.wheelN--
}

// nextOccupied scans the occupancy bitmap cyclically from idx for the
// first non-empty bucket. The caller guarantees the wheel is non-empty.
func (q *calq) nextOccupied(idx int) int {
	// First word: mask off bits below idx.
	w := idx >> 6
	if b := q.occ[w] >> (idx & 63); b != 0 {
		return idx + bits.TrailingZeros64(b)
	}
	for i := 1; i <= len(q.occ); i++ {
		w2 := (w + i) & (len(q.occ) - 1)
		if b := q.occ[w2]; b != 0 {
			return w2<<6 + bits.TrailingZeros64(b)
		}
	}
	panic("sim: nextOccupied on an empty wheel")
}

// migrate moves far events that the advancing base now covers into the
// wheel. They always land in the freshly vacated buckets behind the
// base, which the jump proved empty.
func (q *calq) migrate() {
	for len(q.far) > 0 && q.far[0].at < q.base+wheelHorizon {
		q.pushWheel(q.popFar())
	}
}

// popFar removes the far heap's minimum.
func (q *calq) popFar() *event {
	ev := q.far[0]
	n := len(q.far) - 1
	q.far[0] = q.far[n]
	q.far[n] = nil
	q.far = q.far[:n]
	if n > 0 {
		q.siftDown(0)
	}
	return ev
}

func (q *calq) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.far[i].before(q.far[parent]) {
			return
		}
		q.far[i], q.far[parent] = q.far[parent], q.far[i]
		i = parent
	}
}

func (q *calq) siftDown(i int) {
	n := len(q.far)
	for {
		least := i
		if l := 2*i + 1; l < n && q.far[l].before(q.far[least]) {
			least = l
		}
		if r := 2*i + 2; r < n && q.far[r].before(q.far[least]) {
			least = r
		}
		if least == i {
			return
		}
		q.far[i], q.far[least] = q.far[least], q.far[i]
		i = least
	}
}
