package sim

import "fmt"

// Proc is a simulated process: a goroutine that runs in lock-step with
// the engine. At most one Proc (or the engine itself) executes at any
// real-time moment, which keeps the whole simulation deterministic and
// lock-free.
//
// A Proc advances simulated time only through the blocking helpers
// (Sleep, Signal.Wait, ...). Plain Go computation inside a Proc takes
// zero simulated time.
type Proc struct {
	e        *Engine
	name     string
	resume   chan struct{}
	yield    chan struct{}
	dead     chan struct{} // closed by Engine.Close to abort the goroutine
	woken    bool          // a wake event is already scheduled
	finished bool          // goroutine has exited; step becomes a no-op
	daemon   bool          // service loop: excluded from deadlock accounting
}

// procAbort is the panic value used to unwind an aborted Proc.
type procAbort struct{}

// Go starts fn as a new simulated process. fn begins executing at the
// current simulated time (as a scheduled event). The call returns
// immediately; the process body runs when the engine reaches it.
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		e:      e,
		name:   name,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
		dead:   make(chan struct{}),
	}
	e.procs[p] = struct{}{}
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(procAbort); !ok {
					panic(r)
				}
			}
			delete(e.procs, p)
			if p.daemon {
				e.daemons--
			}
			p.finished = true
			p.yield <- struct{}{}
		}()
		select {
		case <-p.resume:
		case <-p.dead:
			panic(procAbort{})
		}
		fn(p)
	}()
	e.scheduleStep(0, p)
	return p
}

// GoDaemon starts fn as a daemon process: a service loop (a NIC bottom
// half, a background poller) that legitimately never exits. Daemons
// are excluded from Engine.Run's blocked-process count, so a drained
// simulation with only daemons parked reports a clean run rather than
// a deadlock.
func (e *Engine) GoDaemon(name string, fn func(p *Proc)) *Proc {
	p := e.Go(name, fn)
	p.daemon = true
	e.daemons++
	return p
}

// Daemon reports whether the process was started with GoDaemon.
func (p *Proc) Daemon() bool { return p.daemon }

// step transfers control to the process goroutine and waits for it to
// block or finish. Called only from engine context. A step on a
// finished process is a no-op (stale wake events are harmless).
func (p *Proc) step() {
	if p.finished {
		return
	}
	p.resume <- struct{}{}
	<-p.yield
}

// abort unwinds the process goroutine. Called from Engine.Close, always
// while the process is parked (waiting on resume or dead).
func (p *Proc) abort() {
	if p.finished {
		return
	}
	close(p.dead)
	<-p.yield
}

// block suspends the process until something calls wake. Called only
// from process context.
func (p *Proc) block() {
	p.yield <- struct{}{}
	select {
	case <-p.resume:
	case <-p.dead:
		panic(procAbort{})
	}
	if p.e.closing {
		panic(procAbort{})
	}
}

// wake schedules the process to continue at the current simulated time.
// It is idempotent until the process actually runs. Safe to call from
// engine context (event callbacks) or from another process.
//
// wake is a low-level primitive: calling it on a process that is
// blocked for an unrelated reason would end that wait early. Shared
// abstractions must use Signal (whose waiters re-check conditions)
// rather than holding raw *Proc handles.
func (p *Proc) wake() {
	if p.woken {
		return
	}
	p.woken = true
	p.e.scheduleStep(0, p)
}

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.e }

// Name returns the process name (for diagnostics).
func (p *Proc) Name() string { return p.name }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.e.now }

// Sleep suspends the process for d simulated nanoseconds.
func (p *Proc) Sleep(d Duration) {
	if d <= 0 {
		return
	}
	p.e.scheduleWake(d, p)
	p.block()
}

// Yield gives other events scheduled at the current instant a chance to
// run before the process continues.
func (p *Proc) Yield() {
	p.e.scheduleWake(0, p)
	p.block()
}

// WaitFor repeatedly waits on s until cond() is true. It returns
// immediately (without blocking) if the condition already holds.
func (p *Proc) WaitFor(s *Signal, cond func() bool) {
	for !cond() {
		s.Wait(p)
	}
}

// String implements fmt.Stringer.
func (p *Proc) String() string { return fmt.Sprintf("proc(%s)", p.name) }

// Signal is a broadcast wakeup primitive, analogous to a condition
// variable: processes Wait on it, and Broadcast wakes all current
// waiters. There is no notion of a "missed" signal; callers are
// expected to re-check their condition in a loop (or use WaitFor).
type Signal struct {
	waiters []*Proc
	spare   []*Proc // retired waiter slice, reused to keep Wait allocation-free
}

// NewSignal returns a new signal. The zero value is also usable.
func NewSignal() *Signal { return &Signal{} }

// Wait suspends p until the next Broadcast.
func (s *Signal) Wait(p *Proc) {
	s.waiters = append(s.waiters, p)
	p.block()
}

// Broadcast wakes every process currently waiting on s. Waiters are
// drained into a spare buffer first, so processes that Wait again
// while the broadcast runs land on a fresh list (and the two backing
// arrays alternate instead of reallocating every cycle).
func (s *Signal) Broadcast() {
	ws := s.waiters
	s.waiters = s.spare[:0]
	for _, p := range ws {
		p.wake()
	}
	for i := range ws {
		ws[i] = nil
	}
	s.spare = ws[:0]
}

// Waiters reports the number of processes currently waiting.
func (s *Signal) Waiters() int { return len(s.waiters) }
