package sim

import "fmt"

// Proc is a simulated process: a goroutine that runs in lock-step with
// the engine. At most one Proc (or the engine itself) executes at any
// real-time moment, which keeps the whole simulation deterministic and
// lock-free.
//
// A Proc advances simulated time only through the blocking helpers
// (Sleep, Signal.Wait, ...). Plain Go computation inside a Proc takes
// zero simulated time.
type Proc struct {
	e        *Engine
	name     string
	resume   chan struct{}
	yield    chan struct{}
	dead     chan struct{} // closed by Engine.Close to abort the goroutine
	woken    bool          // a wake event is already scheduled
	finished bool          // goroutine has exited; step becomes a no-op
}

// procAbort is the panic value used to unwind an aborted Proc.
type procAbort struct{}

// Go starts fn as a new simulated process. fn begins executing at the
// current simulated time (as a scheduled event). The call returns
// immediately; the process body runs when the engine reaches it.
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		e:      e,
		name:   name,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
		dead:   make(chan struct{}),
	}
	e.procs[p] = struct{}{}
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(procAbort); !ok {
					panic(r)
				}
			}
			delete(e.procs, p)
			p.finished = true
			p.yield <- struct{}{}
		}()
		select {
		case <-p.resume:
		case <-p.dead:
			panic(procAbort{})
		}
		fn(p)
	}()
	e.Schedule(0, func() { p.step() })
	return p
}

// step transfers control to the process goroutine and waits for it to
// block or finish. Called only from engine context. A step on a
// finished process is a no-op (stale wake events are harmless).
func (p *Proc) step() {
	if p.finished {
		return
	}
	p.resume <- struct{}{}
	<-p.yield
}

// abort unwinds the process goroutine. Called from Engine.Close, always
// while the process is parked (waiting on resume or dead).
func (p *Proc) abort() {
	if p.finished {
		return
	}
	close(p.dead)
	<-p.yield
}

// block suspends the process until something calls wake. Called only
// from process context.
func (p *Proc) block() {
	p.yield <- struct{}{}
	select {
	case <-p.resume:
	case <-p.dead:
		panic(procAbort{})
	}
	if p.e.closing {
		panic(procAbort{})
	}
}

// wake schedules the process to continue at the current simulated time.
// It is idempotent until the process actually runs. Safe to call from
// engine context (event callbacks) or from another process.
//
// wake is a low-level primitive: calling it on a process that is
// blocked for an unrelated reason would end that wait early. Shared
// abstractions must use Signal (whose waiters re-check conditions)
// rather than holding raw *Proc handles.
func (p *Proc) wake() {
	if p.woken {
		return
	}
	p.woken = true
	p.e.Schedule(0, func() {
		p.woken = false
		p.step()
	})
}

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.e }

// Name returns the process name (for diagnostics).
func (p *Proc) Name() string { return p.name }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.e.now }

// Sleep suspends the process for d simulated nanoseconds.
func (p *Proc) Sleep(d Duration) {
	if d <= 0 {
		return
	}
	p.e.Schedule(d, p.wake)
	p.block()
}

// Yield gives other events scheduled at the current instant a chance to
// run before the process continues.
func (p *Proc) Yield() {
	p.e.Schedule(0, p.wake)
	p.block()
}

// WaitFor repeatedly waits on s until cond() is true. It returns
// immediately (without blocking) if the condition already holds.
func (p *Proc) WaitFor(s *Signal, cond func() bool) {
	for !cond() {
		s.Wait(p)
	}
}

// String implements fmt.Stringer.
func (p *Proc) String() string { return fmt.Sprintf("proc(%s)", p.name) }

// Signal is a broadcast wakeup primitive, analogous to a condition
// variable: processes Wait on it, and Broadcast wakes all current
// waiters. There is no notion of a "missed" signal; callers are
// expected to re-check their condition in a loop (or use WaitFor).
type Signal struct {
	waiters []*Proc
}

// NewSignal returns a new signal. The zero value is also usable.
func NewSignal() *Signal { return &Signal{} }

// Wait suspends p until the next Broadcast.
func (s *Signal) Wait(p *Proc) {
	s.waiters = append(s.waiters, p)
	p.block()
}

// Broadcast wakes every process currently waiting on s.
func (s *Signal) Broadcast() {
	ws := s.waiters
	s.waiters = nil
	for _, p := range ws {
		p.wake()
	}
}

// Waiters reports the number of processes currently waiting.
func (s *Signal) Waiters() int { return len(s.waiters) }
