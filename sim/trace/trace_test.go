package trace

import (
	"bytes"
	"strings"
	"testing"

	"omxsim/sim"
)

func us(n int64) sim.Time { return sim.Time(n) * 1000 }

// TestRenderDeterministic: identical input produces byte-identical
// output, regardless of insertion order races upstream (the builder
// sorts internally).
func TestRenderDeterministic(t *testing.T) {
	build := func(order []int) []byte {
		d := NewDoc()
		p := d.Process(1, "host")
		spans := []struct {
			name     string
			from, to int64
		}{{"a", 0, 10}, {"b", 5, 15}, {"c", 10, 20}, {"d", 0, 3}}
		for _, i := range order {
			s := spans[i]
			p.Span(s.name, "test", us(s.from), us(s.to), Int("i", i))
		}
		p.Counter("load", us(2), 0.5)
		p.Counter("load", us(12), 1.5)
		return d.Render()
	}
	a := build([]int{0, 1, 2, 3})
	b := build([]int{3, 2, 1, 0})
	if !bytes.Equal(a, b) {
		t.Fatalf("render not deterministic:\n%s\nvs\n%s", a, b)
	}
	if err := Validate(a); err != nil {
		t.Fatal(err)
	}
}

// TestOverlapColoring: overlapping spans land on distinct tids and
// each tid's spans stay non-overlapping (Validate enforces balance
// and monotonicity, which would fail on a shared track).
func TestOverlapColoring(t *testing.T) {
	d := NewDoc()
	p := d.Process(1, "host")
	p.Span("a", "t", us(0), us(100))
	p.Span("b", "t", us(10), us(50)) // overlaps a
	p.Span("c", "t", us(20), us(30)) // overlaps a and b
	p.Span("d", "t", us(100), us(110))
	out := d.Render()
	if err := Validate(out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `"tid":2`) {
		t.Fatalf("triple overlap should use three tracks:\n%s", out)
	}
	if strings.Contains(string(out), `"tid":3`) {
		t.Fatalf("four tracks used where three suffice:\n%s", out)
	}
}

// TestInstantAndZeroSpan: zero-length spans degrade to instants and
// still validate.
func TestInstantAndZeroSpan(t *testing.T) {
	d := NewDoc()
	p := d.Process(7, "fw")
	p.Span("retransmit", "t", us(5), us(5), Int("seq", 42))
	p.Instant("mark", "t", us(5))
	if err := Validate(d.Render()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(d.Render()), `"ph":"i"`) {
		t.Fatal("zero-length span did not render as instant")
	}
}

// TestValidateCatchesViolations: hand-built bad documents fail with
// the right complaint.
func TestValidateCatchesViolations(t *testing.T) {
	cases := []struct {
		doc  string
		want string
	}{
		{`{}`, "missing traceEvents"},
		{`{"traceEvents":[{"pid":1}]}`, "missing ph"},
		{`{"traceEvents":[{"ph":"B","pid":1,"tid":0,"name":"x"}]}`, "missing ts"},
		{`{"traceEvents":[{"ph":"B","ts":1,"pid":1,"tid":0,"name":"x"}]}`, "unbalanced B"},
		{`{"traceEvents":[{"ph":"E","ts":1,"pid":1,"tid":0,"name":"x"}]}`, "without open B"},
		{`{"traceEvents":[
			{"ph":"B","ts":5,"pid":1,"tid":0,"name":"x"},
			{"ph":"E","ts":3,"pid":1,"tid":0,"name":"x"}]}`, "before"},
		{`{"traceEvents":[
			{"ph":"B","ts":1,"pid":1,"tid":0,"name":"x"},
			{"ph":"E","ts":2,"pid":1,"tid":0,"name":"y"}]}`, "closes open B"},
		{`{"traceEvents":[{"ph":"C","ts":1,"pid":1,"tid":0,"name":"c","args":{}}]}`, "exactly one series"},
	}
	for _, c := range cases {
		err := Validate([]byte(c.doc))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Validate(%s) = %v, want error containing %q", c.doc, err, c.want)
		}
	}
}

// TestTimestampPrecision: nanosecond sim times render as fixed
// 3-decimal microseconds.
func TestTimestampPrecision(t *testing.T) {
	d := NewDoc()
	p := d.Process(1, "host")
	p.Span("s", "t", sim.Time(1234), sim.Time(5678901))
	out := string(d.Render())
	for _, want := range []string{`"ts":1.234`, `"ts":5678.901`} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %s:\n%s", want, out)
		}
	}
}
