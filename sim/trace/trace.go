// Package trace renders simulation span streams as Chrome trace_event
// JSON — the format chrome://tracing and Perfetto load directly. The
// output is built deterministically: events are sorted by a total
// order, floating-point timestamps are formatted with a fixed
// precision, and overlapping spans of one process are laid out on
// distinct thread tracks by a greedy interval coloring, so the same
// simulation run always produces byte-identical JSON (the golden-trace
// tests depend on this).
//
// The package speaks only in simulated time (sim.Time) and knows
// nothing about the transport stacks; callers (figures.TraceJSON, the
// omxsim trace command, omxsimd's per-job trace endpoint) convert
// their span streams into Doc calls.
package trace

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"omxsim/sim"
)

// Arg is one ordered key/value annotation on a span or instant event.
// Values render as JSON numbers when numeric (Int/Float) and as JSON
// strings otherwise; ordering is preserved into the output.
type Arg struct {
	Key string
	Val string
	num bool
}

// Str builds a string-valued argument.
func Str(key, val string) Arg { return Arg{Key: key, Val: val} }

// Int builds an integer-valued argument.
func Int(key string, val int) Arg { return Arg{Key: key, Val: strconv.Itoa(val), num: true} }

// Float builds a float-valued argument with fixed 3-decimal precision
// (deterministic formatting).
func Float(key string, val float64) Arg {
	return Arg{Key: key, Val: strconv.FormatFloat(val, 'f', 3, 64), num: true}
}

// span is one closed interval on a process timeline.
type span struct {
	name    string
	cat     string
	start   sim.Time
	end     sim.Time
	instant bool
	args    []Arg
	tid     int
}

// counter is one sample of a per-process counter series.
type counter struct {
	name  string
	at    sim.Time
	value float64
}

// Process is one pid's timeline: spans, instants and counters.
type Process struct {
	pid      int
	name     string
	spans    []span
	counters []counter
}

// Doc accumulates processes and renders the trace document.
type Doc struct {
	procs []*Process
}

// NewDoc returns an empty trace document.
func NewDoc() *Doc { return &Doc{} }

// Process returns (creating if needed) the process with the given pid,
// setting its display name. Creation order is preserved in the output.
func (d *Doc) Process(pid int, name string) *Process {
	for _, p := range d.procs {
		if p.pid == pid {
			return p
		}
	}
	p := &Process{pid: pid, name: name}
	d.procs = append(d.procs, p)
	return p
}

// Span records a closed [start, end] interval. Zero- or negative-length
// spans are recorded as instants.
func (p *Process) Span(name, cat string, start, end sim.Time, args ...Arg) {
	if end <= start {
		p.Instant(name, cat, start, args...)
		return
	}
	p.spans = append(p.spans, span{name: name, cat: cat, start: start, end: end, args: args})
}

// Instant records a zero-duration event.
func (p *Process) Instant(name, cat string, at sim.Time, args ...Arg) {
	p.spans = append(p.spans, span{name: name, cat: cat, start: at, end: at, instant: true, args: args})
}

// Counter records one sample of a counter series.
func (p *Process) Counter(name string, at sim.Time, value float64) {
	p.counters = append(p.counters, counter{name: name, at: at, value: value})
}

// micros formats a simulated time as trace microseconds with fixed
// 3-decimal (nanosecond) precision.
func micros(t sim.Time) string {
	return strconv.FormatFloat(float64(t)/1e3, 'f', 3, 64)
}

// layout sorts a process's spans into the deterministic total order
// and assigns each to the first thread track free at its start time
// (greedy interval coloring): overlapping spans land on distinct tids,
// and every tid's spans are non-overlapping and time-sorted. It
// returns the number of tracks used.
func (p *Process) layout() int {
	sort.SliceStable(p.spans, func(i, j int) bool {
		a, b := p.spans[i], p.spans[j]
		if a.start != b.start {
			return a.start < b.start
		}
		if a.end != b.end {
			return a.end > b.end // longer first: nesting-friendly
		}
		return a.name < b.name
	})
	var trackEnd []sim.Time
	for i := range p.spans {
		s := &p.spans[i]
		tid := -1
		for t, end := range trackEnd {
			if end <= s.start {
				tid = t
				break
			}
		}
		if tid < 0 {
			tid = len(trackEnd)
			trackEnd = append(trackEnd, 0)
		}
		// An instant occupies its point in time: a span starting at the
		// same moment must move to another track, so instants bump the
		// track end just past their timestamp.
		if s.instant {
			trackEnd[tid] = s.start + 1
		} else {
			trackEnd[tid] = s.end
		}
		s.tid = tid
	}
	sort.SliceStable(p.counters, func(i, j int) bool {
		a, b := p.counters[i], p.counters[j]
		if a.at != b.at {
			return a.at < b.at
		}
		return a.name < b.name
	})
	return len(trackEnd)
}

// Render produces the trace document: a {"traceEvents": [...]} object,
// one event per line, byte-deterministic for identical input.
func (d *Doc) Render() []byte {
	var b strings.Builder
	b.WriteString("{\"traceEvents\":[\n")
	first := true
	emit := func(line string) {
		if !first {
			b.WriteString(",\n")
		}
		first = false
		b.WriteString(line)
	}
	for _, p := range d.procs {
		tracks := p.layout()
		emit(fmt.Sprintf(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%s}}`,
			p.pid, quote(p.name)))
		for t := 0; t < tracks; t++ {
			emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%s}}`,
				p.pid, t, quote(fmt.Sprintf("track %d", t))))
		}
		// Interleave B/E, instant and counter events in one global
		// time order per process. Ties: E before B (a track hands off
		// at the boundary), counters last.
		type ev struct {
			at   sim.Time
			rank int // 0 end, 1 begin/instant, 2 counter
			line string
		}
		var evs []ev
		for _, s := range p.spans {
			args := renderArgs(s.args)
			if s.instant {
				evs = append(evs, ev{s.start, 1, fmt.Sprintf(
					`{"name":%s,"cat":%s,"ph":"i","s":"t","ts":%s,"pid":%d,"tid":%d%s}`,
					quote(s.name), quote(s.cat), micros(s.start), p.pid, s.tid, args)})
				continue
			}
			evs = append(evs, ev{s.start, 1, fmt.Sprintf(
				`{"name":%s,"cat":%s,"ph":"B","ts":%s,"pid":%d,"tid":%d%s}`,
				quote(s.name), quote(s.cat), micros(s.start), p.pid, s.tid, args)})
			evs = append(evs, ev{s.end, 0, fmt.Sprintf(
				`{"name":%s,"cat":%s,"ph":"E","ts":%s,"pid":%d,"tid":%d}`,
				quote(s.name), quote(s.cat), micros(s.end), p.pid, s.tid)})
		}
		for _, c := range p.counters {
			evs = append(evs, ev{c.at, 2, fmt.Sprintf(
				`{"name":%s,"ph":"C","ts":%s,"pid":%d,"tid":0,"args":{%s:%s}}`,
				quote(c.name), micros(c.at), p.pid, quote(c.name),
				strconv.FormatFloat(c.value, 'f', 3, 64))})
		}
		sort.SliceStable(evs, func(i, j int) bool {
			if evs[i].at != evs[j].at {
				return evs[i].at < evs[j].at
			}
			return evs[i].rank < evs[j].rank
		})
		for _, e := range evs {
			emit(e.line)
		}
	}
	b.WriteString("\n],\"displayTimeUnit\":\"ms\"}\n")
	return []byte(b.String())
}

// renderArgs renders an ordered argument list as `,"args":{...}` (or
// nothing when empty).
func renderArgs(args []Arg) string {
	if len(args) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString(`,"args":{`)
	for i, a := range args {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString(quote(a.Key))
		b.WriteString(":")
		if a.num {
			b.WriteString(a.Val)
		} else {
			b.WriteString(quote(a.Val))
		}
	}
	b.WriteString("}")
	return b.String()
}

// quote JSON-escapes a string. The escape set covers everything the
// simulator emits (ASCII names); other control bytes use \u00XX.
func quote(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			b.WriteString(`\"`)
		case c == '\\':
			b.WriteString(`\\`)
		case c == '\n':
			b.WriteString(`\n`)
		case c == '\t':
			b.WriteString(`\t`)
		case c < 0x20:
			fmt.Fprintf(&b, `\u%04x`, c)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}
