package trace

import (
	"encoding/json"
	"fmt"
)

// Validate checks a rendered document against the trace_event format
// rules the exporter promises (and chrome://tracing assumes):
//
//   - the document is a JSON object with a traceEvents array;
//   - every event carries ph and pid; every non-metadata event also
//     carries a numeric ts and a tid;
//   - per (pid, tid), timestamps are monotonically non-decreasing in
//     array order;
//   - per (pid, tid), B and E events balance: every E closes the
//     matching B (same name), and no B is left open at the end;
//   - counter events carry exactly one numeric series in args.
//
// The conformance tests run every exported trace through Validate.
func Validate(data []byte) error {
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("trace: not valid JSON: %w", err)
	}
	if doc.TraceEvents == nil {
		return fmt.Errorf("trace: missing traceEvents array")
	}
	type track struct {
		pid, tid int
	}
	lastTs := map[track]float64{}
	open := map[track][]string{}
	for i, ev := range doc.TraceEvents {
		ph, ok := ev["ph"].(string)
		if !ok || ph == "" {
			return fmt.Errorf("trace: event %d: missing ph", i)
		}
		pid, ok := num(ev["pid"])
		if !ok {
			return fmt.Errorf("trace: event %d: missing pid", i)
		}
		if ph == "M" {
			continue // metadata: no timeline position
		}
		ts, ok := num(ev["ts"])
		if !ok {
			return fmt.Errorf("trace: event %d (ph %s): missing ts", i, ph)
		}
		tid, ok := num(ev["tid"])
		if !ok {
			return fmt.Errorf("trace: event %d (ph %s): missing tid", i, ph)
		}
		tr := track{int(pid), int(tid)}
		if prev, seen := lastTs[tr]; seen && ts < prev {
			return fmt.Errorf("trace: event %d: ts %.3f before %.3f on pid %d tid %d",
				i, ts, prev, tr.pid, tr.tid)
		}
		lastTs[tr] = ts
		name, _ := ev["name"].(string)
		switch ph {
		case "B":
			open[tr] = append(open[tr], name)
		case "E":
			stack := open[tr]
			if len(stack) == 0 {
				return fmt.Errorf("trace: event %d: E %q without open B on pid %d tid %d",
					i, name, tr.pid, tr.tid)
			}
			top := stack[len(stack)-1]
			if name != "" && top != name {
				return fmt.Errorf("trace: event %d: E %q closes open B %q on pid %d tid %d",
					i, name, top, tr.pid, tr.tid)
			}
			open[tr] = stack[:len(stack)-1]
		case "C":
			args, ok := ev["args"].(map[string]any)
			if !ok || len(args) != 1 {
				return fmt.Errorf("trace: event %d: counter %q needs exactly one series", i, name)
			}
			for k, v := range args {
				if _, ok := num(v); !ok {
					return fmt.Errorf("trace: event %d: counter series %q not numeric", i, k)
				}
			}
		case "i", "X":
			// Instants and complete events carry no stack obligations.
		default:
			return fmt.Errorf("trace: event %d: unsupported ph %q", i, ph)
		}
	}
	for tr, stack := range open {
		if len(stack) > 0 {
			return fmt.Errorf("trace: unbalanced B %q on pid %d tid %d", stack[len(stack)-1], tr.pid, tr.tid)
		}
	}
	return nil
}

// num extracts a float from a decoded JSON value.
func num(v any) (float64, bool) {
	f, ok := v.(float64)
	return f, ok
}
