// Package sim provides a deterministic discrete-event simulation engine.
//
// Time is a simulated nanosecond counter. Events scheduled for the same
// instant fire in scheduling order (ties broken by a monotonically
// increasing sequence number), so a given program always produces the
// same trajectory.
//
// Two programming styles are supported and freely mixed:
//
//   - callback style: Schedule(delay, fn) / At(t, fn), used by the
//     hardware models (NICs, DMA engines, timers);
//   - process style: Go(name, fn) starts a coroutine-like Proc that can
//     Sleep, wait on Signals, and occupy simulated CPU cores. Exactly
//     one goroutine (the engine or a single Proc) runs at any moment, so
//     no locking is needed anywhere in the simulation.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
)

// Time is a point in simulated time, in nanoseconds since Run started.
type Time int64

// Duration is a span of simulated time, in nanoseconds.
type Duration = Time

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond Duration = 1000
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros reports t as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// An event is a scheduled callback. Cancelled events stay in the heap
// and are skipped when popped.
type event struct {
	at        Time
	seq       uint64
	fn        func()
	cancelled bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Timer is a handle to a scheduled event that can be cancelled.
type Timer struct{ ev *event }

// Stop cancels the timer. It reports whether the timer was still
// pending (i.e. Stop prevented the callback from running).
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.cancelled {
		return false
	}
	t.ev.cancelled = true
	return true
}

// Engine is a discrete-event simulation engine.
// The zero value is not usable; call New.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	procs   map[*Proc]struct{}
	closing bool
	running bool
}

// New returns a ready-to-use engine at time zero.
func New() *Engine {
	return &Engine{procs: make(map[*Proc]struct{})}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Schedule arranges for fn to run after delay. A negative delay is
// treated as zero. The returned Timer may be used to cancel it.
func (e *Engine) Schedule(delay Duration, fn func()) *Timer {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At arranges for fn to run at absolute time t (clamped to now).
func (e *Engine) At(t Time, fn func()) *Timer {
	if t < e.now {
		t = e.now
	}
	e.seq++
	ev := &event{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.events, ev)
	return &Timer{ev: ev}
}

// Pending reports the number of live (non-cancelled) scheduled events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.events {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

// step pops and runs the next event. It reports false when no runnable
// event remains.
func (e *Engine) step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		ev.fn()
		return true
	}
	return false
}

// Run executes events until none remain, then returns the number of
// processes still blocked (0 means a clean fully-drained run; nonzero
// usually indicates a protocol deadlock in the simulated program).
func (e *Engine) Run() int {
	e.running = true
	for e.step() {
	}
	e.running = false
	return len(e.procs)
}

// RunUntil executes events up to and including time t, leaving later
// events pending. The clock is left at t.
func (e *Engine) RunUntil(t Time) {
	for len(e.events) > 0 {
		// Peek.
		next := e.events[0]
		if next.cancelled {
			heap.Pop(&e.events)
			continue
		}
		if next.at > t {
			break
		}
		e.step()
	}
	if e.now < t {
		e.now = t
	}
}

// BlockedProcs returns the names of processes that have started but not
// finished, sorted for deterministic reporting.
func (e *Engine) BlockedProcs() []string {
	var names []string
	for p := range e.procs {
		names = append(names, p.name)
	}
	sort.Strings(names)
	return names
}

// Close aborts all live processes so their goroutines exit. The engine
// must not be used afterwards. It is safe to call on a fully drained
// engine (it is then a no-op) and is intended for tests and for
// tearing down deadlocked simulations.
func (e *Engine) Close() {
	e.closing = true
	for p := range e.procs {
		p.abort()
	}
	e.procs = map[*Proc]struct{}{}
}
