// Package sim provides a deterministic discrete-event simulation engine.
//
// Time is a simulated nanosecond counter. Events scheduled for the same
// instant fire in scheduling order (ties broken by a monotonically
// increasing sequence number), so a given program always produces the
// same trajectory.
//
// Two programming styles are supported and freely mixed:
//
//   - callback style: Schedule(delay, fn) / At(t, fn), used by the
//     hardware models (NICs, DMA engines, timers);
//   - process style: Go(name, fn) starts a coroutine-like Proc that can
//     Sleep, wait on Signals, and occupy simulated CPU cores. Exactly
//     one goroutine (the engine or a single Proc) runs at any moment, so
//     no locking is needed anywhere in the simulation.
//
// The event queue is a calendar queue (timing wheel plus a far-future
// heap, see calq.go) with pooled event records: the steady-state
// schedule→fire→recycle cycle allocates nothing, which is what lets
// 512-rank fat-tree worlds run inside CI. Service loops that
// legitimately never exit (NIC bottom halves) are started with GoDaemon
// and excluded from deadlock accounting by flag rather than by name.
package sim

import (
	"fmt"
	"sort"
)

// Time is a point in simulated time, in nanoseconds since Run started.
type Time int64

// Duration is a span of simulated time, in nanoseconds.
type Duration = Time

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond Duration = 1000
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros reports t as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Timer is a handle to a scheduled event that can be cancelled. The
// zero value is a stale handle: Stop and Pending report false. Timers
// are values (not pointers) so the schedule fast path allocates
// nothing; copy them freely.
type Timer struct {
	e   *Engine
	ev  *event
	gen uint32
}

// Pending reports whether the event is still scheduled: not yet fired,
// not cancelled, and the handle not stale.
func (t Timer) Pending() bool {
	return t.ev != nil && t.ev.gen == t.gen && !t.ev.cancelled
}

// Stop cancels the timer. It reports whether the timer was still
// pending (i.e. Stop prevented the callback from running). Stopping a
// fired, already-stopped or zero Timer is a safe no-op: the event pool
// bumps a generation counter on recycle, so a stale handle can never
// cancel an unrelated event that reused the slot.
func (t Timer) Stop() bool {
	if !t.Pending() {
		return false
	}
	t.ev.cancelled = true
	t.e.live--
	return true
}

// Engine is a discrete-event simulation engine.
// The zero value is not usable; call New.
type Engine struct {
	now     Time
	seq     uint64
	q       calq
	live    int // scheduled, non-cancelled events
	procs   map[*Proc]struct{}
	daemons int // live procs flagged as daemons
	closing bool
	running bool
}

// New returns a ready-to-use engine at time zero.
func New() *Engine {
	return &Engine{procs: make(map[*Proc]struct{})}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Schedule arranges for fn to run after delay. A negative delay is
// treated as zero. The returned Timer may be used to cancel it.
func (e *Engine) Schedule(delay Duration, fn func()) Timer {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At arranges for fn to run at absolute time t (clamped to now).
func (e *Engine) At(t Time, fn func()) Timer {
	ev := e.push(t)
	ev.fn = fn
	return Timer{e: e, ev: ev, gen: ev.gen}
}

// scheduleStep files a process-step event: when it fires, p resumes.
// No closure is built, so the Sleep/Yield/wake hot path is
// allocation-free.
func (e *Engine) scheduleStep(delay Duration, p *Proc) {
	if delay < 0 {
		delay = 0
	}
	ev := e.push(e.now + delay)
	ev.proc = p
}

// scheduleWake files a process-wake event: when it fires, p.wake runs
// (which in turn files the step event). This is the closure-free
// equivalent of the original Schedule(d, p.wake).
func (e *Engine) scheduleWake(delay Duration, p *Proc) {
	if delay < 0 {
		delay = 0
	}
	ev := e.push(e.now + delay)
	ev.proc = p
	ev.wakeup = true
}

// push allocates a pooled event at absolute time t (clamped to now)
// and files it in the calendar queue.
func (e *Engine) push(t Time) *event {
	if t < e.now {
		t = e.now
	}
	e.seq++
	ev := e.q.alloc()
	ev.at = t
	ev.seq = e.seq
	e.q.push(ev)
	e.live++
	return ev
}

// Pending reports the number of live (non-cancelled) scheduled events.
func (e *Engine) Pending() int { return e.live }

// fire runs one popped event and recycles it. The record is returned
// to the pool before the callback runs, so callbacks that immediately
// reschedule reuse the hot slot.
func (e *Engine) fire(ev *event) {
	fn, p, wakeup := ev.fn, ev.proc, ev.wakeup
	e.q.recycle(ev)
	e.live--
	switch {
	case p != nil && wakeup:
		p.wake()
	case p != nil:
		p.woken = false
		p.step()
	default:
		fn()
	}
}

// step pops and runs the next event. It reports false when no runnable
// event remains.
func (e *Engine) step() bool {
	ev := e.q.pop()
	if ev == nil {
		return false
	}
	e.now = ev.at
	e.fire(ev)
	return true
}

// Run executes events until none remain, then returns the number of
// processes still blocked, daemons excluded (0 means a clean fully
// drained run; nonzero usually indicates a protocol deadlock in the
// simulated program).
func (e *Engine) Run() int {
	e.running = true
	for e.step() {
	}
	e.running = false
	return len(e.procs) - e.daemons
}

// RunUntil executes events up to and including time t, leaving later
// events pending. The clock is left at t.
func (e *Engine) RunUntil(t Time) {
	for {
		next := e.q.pop()
		if next == nil {
			break
		}
		if next.at > t {
			// Not due yet: put it back. Re-pushing keeps its (at, seq)
			// key, so ordering is untouched.
			e.q.push(next)
			break
		}
		e.now = next.at
		e.fire(next)
	}
	if e.now < t {
		e.now = t
	}
}

// BlockedProcs returns the names of processes that have started but not
// finished, sorted for deterministic reporting. Daemons are included
// (they are blocked by design); Run's return value excludes them.
func (e *Engine) BlockedProcs() []string {
	var names []string
	for p := range e.procs {
		names = append(names, p.name)
	}
	sort.Strings(names)
	return names
}

// Daemons reports the number of live daemon processes (service loops
// started with GoDaemon that legitimately never exit).
func (e *Engine) Daemons() int { return e.daemons }

// Close aborts all live processes so their goroutines exit. The engine
// must not be used afterwards. It is safe to call on a fully drained
// engine (it is then a no-op) and is intended for tests and for
// tearing down deadlocked simulations.
func (e *Engine) Close() {
	e.closing = true
	for p := range e.procs {
		p.abort()
	}
	e.procs = map[*Proc]struct{}{}
	e.daemons = 0
}
