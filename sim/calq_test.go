package sim

import (
	"container/heap"
	"math/rand"
	"testing"
	"testing/quick"
)

// Tests for the calendar-queue event core: the wheel/far-heap split,
// the event pool and generation counters, daemon accounting, and the
// zero-allocation steady state the -benchmem CI gate enforces.

func TestFarFutureOrdering(t *testing.T) {
	// Delays far beyond the wheel horizon land in the far heap and
	// must still interleave correctly with near events as the base
	// advances across many horizons.
	e := New()
	var fired []Time
	delays := []Duration{
		5, wheelHorizon - 1, wheelHorizon, wheelHorizon + 1,
		3 * wheelHorizon, 10*wheelHorizon + 17, 2, wheelHorizon / 2,
	}
	for _, d := range delays {
		e.Schedule(d, func() { fired = append(fired, e.Now()) })
	}
	e.Run()
	if len(fired) != len(delays) {
		t.Fatalf("fired %d events, want %d", len(fired), len(delays))
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("events fired out of order: %v", fired)
		}
	}
	if e.Now() != Time(10*wheelHorizon+17) {
		t.Fatalf("Now = %v, want %v", e.Now(), Time(10*wheelHorizon+17))
	}
}

func TestFarFutureSameInstantKeepsSeqOrder(t *testing.T) {
	// Two events at the same far-future instant must fire in
	// scheduling order even after migrating heap → wheel.
	e := New()
	var got []int
	at := 7*wheelHorizon + 3
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(at, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant far events fired out of order: %v", got)
		}
	}
}

func TestFarFutureCancel(t *testing.T) {
	e := New()
	ran := false
	tm := e.Schedule(4*wheelHorizon, func() { ran = true })
	e.Schedule(5*wheelHorizon, func() {})
	if !tm.Stop() {
		t.Fatal("Stop returned false on pending far event")
	}
	e.Run()
	if ran {
		t.Fatal("cancelled far event ran")
	}
}

func TestRunUntilAcrossHorizons(t *testing.T) {
	// RunUntil must stop short of a far-heap event and resume it later.
	e := New()
	fired := false
	e.Schedule(3*wheelHorizon, func() { fired = true })
	e.RunUntil(Time(wheelHorizon))
	if fired {
		t.Fatal("far event fired before its time")
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	e.RunUntil(Time(4 * wheelHorizon))
	if !fired {
		t.Fatal("far event never fired")
	}
}

func TestTimerStaleAfterFire(t *testing.T) {
	// A Timer handle goes stale once its event fires; the pooled event
	// slot may be reused, and the generation counter must keep the old
	// handle inert.
	e := New()
	tm := e.Schedule(1, func() {})
	e.Run()
	if tm.Pending() {
		t.Fatal("Pending true after fire")
	}
	if tm.Stop() {
		t.Fatal("Stop returned true after fire")
	}
	// Reuse the pooled slot for a new event, then poke the stale
	// handle: the new event must be unaffected.
	ran := false
	e.Schedule(1, func() { ran = true })
	if tm.Stop() || tm.Pending() {
		t.Fatal("stale handle touched a recycled event")
	}
	e.Run()
	if !ran {
		t.Fatal("recycled event did not run")
	}
}

func TestZeroTimerInert(t *testing.T) {
	var tm Timer
	if tm.Pending() || tm.Stop() {
		t.Fatal("zero Timer is not inert")
	}
}

func TestGoDaemon(t *testing.T) {
	// A daemon proc blocked forever must not count as a deadlock.
	e := New()
	s := NewSignal()
	served := 0
	e.GoDaemon("server", func(p *Proc) {
		for {
			s.Wait(p)
			served++
		}
	})
	e.Go("client", func(p *Proc) {
		p.Sleep(10)
		s.Broadcast()
		p.Sleep(10)
		s.Broadcast()
	})
	if e.Daemons() != 1 {
		t.Fatalf("Daemons = %d, want 1", e.Daemons())
	}
	if n := e.Run(); n != 0 {
		t.Fatalf("Run = %d, want 0 (daemon must not count)", n)
	}
	if served != 2 {
		t.Fatalf("served = %d, want 2", served)
	}
	e.Close()
	if e.Daemons() != 0 {
		t.Fatalf("Daemons after Close = %d, want 0", e.Daemons())
	}
}

func TestDaemonExitDecrements(t *testing.T) {
	e := New()
	e.GoDaemon("once", func(p *Proc) { p.Sleep(5) })
	e.Run()
	if e.Daemons() != 0 {
		t.Fatalf("Daemons = %d after daemon exit, want 0", e.Daemons())
	}
}

// Property: random batches mixing near, far and cancelled events fire
// exactly the live ones in (time, seq) order.
func TestPropertyCalendarOrdering(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		count := int(n%200) + 1
		type rec struct {
			at  Time
			seq int
		}
		var fired []rec
		var timers []Timer
		for i := 0; i < count; i++ {
			i := i
			// Mix bucket-scale and multi-horizon delays.
			var d Duration
			if rng.Intn(3) == 0 {
				d = Duration(rng.Int63n(int64(20 * wheelHorizon)))
			} else {
				d = Duration(rng.Int63n(int64(4 * bucketWidth)))
			}
			timers = append(timers, e.Schedule(d, func() {
				fired = append(fired, rec{e.Now(), i})
			}))
		}
		cancelled := 0
		for i := 0; i < count; i += 7 {
			if timers[i].Stop() {
				cancelled++
			}
		}
		e.Run()
		if len(fired) != count-cancelled {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].at < fired[i-1].at {
				return false
			}
			if fired[i].at == fired[i-1].at && fired[i].seq < fired[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestEngineSteadyStateZeroAlloc is the alloc gate's test form: once
// the event pool and the wheel buckets are warm (one full rotation of
// the wheel at the churn's density), a schedule/fire churn must not
// allocate. The CI benchmark gate enforces the same bound on the
// benchmarks below via -benchmem.
func TestEngineSteadyStateZeroAlloc(t *testing.T) {
	e := New()
	fn := func() {}
	churn := func() {
		for i := 0; i < 256; i++ {
			e.Schedule(Duration(i%97), fn)
		}
		e.Run()
	}
	// Warm-up: each churn advances the clock ~96 ns, so ~3000 rounds
	// sweep the full 262 µs wheel horizon and size every bucket slice
	// to the churn's per-bucket density.
	for i := 0; i < 3000; i++ {
		churn()
	}
	if allocs := testing.AllocsPerRun(100, churn); allocs != 0 {
		t.Fatalf("steady-state schedule/fire allocated %.1f allocs/op, want 0", allocs)
	}
}

// TestWakeEventZeroAllocSteadyState covers the closure-free proc
// event path (the Sleep/Yield/wake hot loop of every simulated
// bottom half) at the queue level.
func TestWakeEventZeroAllocSteadyState(t *testing.T) {
	e := New()
	churn := func() {
		for i := 0; i < 64; i++ {
			e.scheduleWake(Duration(i%97), nil)
		}
		for i := 0; i < 64; i++ {
			ev := e.q.pop()
			e.now = ev.at
			e.q.recycle(ev)
			e.live--
		}
	}
	// Warm-up: sweep a full wheel rotation (262 µs) at the churn's
	// density — each churn advances the clock only 63 ns.
	for i := 0; i < 6000; i++ {
		churn()
	}
	if allocs := testing.AllocsPerRun(100, churn); allocs != 0 {
		t.Fatalf("wake-event churn allocated %.1f allocs/op, want 0", allocs)
	}
}

// ---------------------------------------------------------------------
// Binary-heap baseline: the engine's previous event core, kept here
// (test-only) as the benchmark yardstick for the calendar queue.

type heapEvent struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*heapEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*heapEvent)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// churn is the benchmark load: live concurrent timers, each firing
// and rescheduling itself with a deterministic pseudo-random delta —
// the shape of a 512-rank world's retransmit/ack/wire timer churn.
func churnDeltas(n int) []Duration {
	// Deterministic LCG, delays spanning sub-bucket to multi-bucket.
	deltas := make([]Duration, n)
	x := uint64(0x2545F4914F6CDD1D)
	for i := range deltas {
		x = x*6364136223846793005 + 1442695040888963407
		deltas[i] = Duration(1 + (x>>33)%5000)
	}
	return deltas
}

// benchLive is the number of concurrently pending events: the order
// of magnitude of a 512-rank fat-tree world (per-channel retransmit
// timers, NIC wire events, switch forwards).
const benchLive = 2048

func BenchmarkEventCoreCalendar(b *testing.B) {
	deltas := churnDeltas(4096)
	e := New()
	fire := 0
	var self func()
	di := 0
	self = func() {
		fire++
		di++
		e.Schedule(deltas[di&4095], self)
	}
	for i := 0; i < benchLive; i++ {
		e.Schedule(deltas[i&4095], self)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		ev := e.q.pop()
		e.now = ev.at
		fn := ev.fn
		e.q.recycle(ev)
		e.live--
		fn()
	}
	b.StopTimer()
	e.Close()
}

func BenchmarkEventCoreHeap(b *testing.B) {
	deltas := churnDeltas(4096)
	var h eventHeap
	var now Time
	var seq uint64
	fire := 0
	di := 0
	var self func()
	push := func(d Duration, fn func()) {
		seq++
		heap.Push(&h, &heapEvent{at: now + Time(d), seq: seq, fn: fn})
	}
	self = func() {
		fire++
		di++
		push(deltas[di&4095], self)
	}
	for i := 0; i < benchLive; i++ {
		push(deltas[i&4095], self)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		ev := heap.Pop(&h).(*heapEvent)
		now = ev.at
		ev.fn()
	}
}
