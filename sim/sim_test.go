package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrder(t *testing.T) {
	e := New()
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	if n := e.Run(); n != 0 {
		t.Fatalf("Run left %d procs", n)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %v, want 30", e.Now())
	}
}

func TestTieBreakBySequence(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Run()
	if !sort.IntsAreSorted(got) {
		t.Fatalf("same-time events fired out of scheduling order: %v", got)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := New()
	ran := false
	e.Schedule(-5, func() { ran = true })
	e.Run()
	if !ran || e.Now() != 0 {
		t.Fatalf("negative delay: ran=%v now=%v", ran, e.Now())
	}
}

func TestTimerStop(t *testing.T) {
	e := New()
	ran := false
	tm := e.Schedule(10, func() { ran = true })
	if !tm.Stop() {
		t.Fatal("Stop returned false on pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	e.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	var fired []Time
	for _, d := range []Duration{10, 20, 30, 40} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(25)
	if len(fired) != 2 || e.Now() != 25 {
		t.Fatalf("RunUntil(25): fired=%v now=%v", fired, e.Now())
	}
	e.RunUntil(100)
	if len(fired) != 4 {
		t.Fatalf("RunUntil(100): fired=%v", fired)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := New()
	e.RunUntil(1000)
	if e.Now() != 1000 {
		t.Fatalf("Now = %v, want 1000", e.Now())
	}
}

func TestNestedScheduling(t *testing.T) {
	e := New()
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 50 {
			e.Schedule(1, rec)
		}
	}
	e.Schedule(1, rec)
	e.Run()
	if depth != 50 {
		t.Fatalf("depth = %d, want 50", depth)
	}
	if e.Now() != 50 {
		t.Fatalf("Now = %v, want 50", e.Now())
	}
}

func TestProcSleep(t *testing.T) {
	e := New()
	var wake Time
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(100)
		wake = p.Now()
	})
	if n := e.Run(); n != 0 {
		t.Fatalf("Run left %d procs", n)
	}
	if wake != 100 {
		t.Fatalf("woke at %v, want 100", wake)
	}
}

func TestProcSequentialSleeps(t *testing.T) {
	e := New()
	var marks []Time
	e.Go("p", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(10)
			marks = append(marks, p.Now())
		}
	})
	e.Run()
	for i, m := range marks {
		if m != Time(10*(i+1)) {
			t.Fatalf("marks = %v", marks)
		}
	}
}

func TestSignalBroadcast(t *testing.T) {
	e := New()
	s := NewSignal()
	woken := 0
	for i := 0; i < 3; i++ {
		e.Go("w", func(p *Proc) {
			s.Wait(p)
			woken++
		})
	}
	e.Go("b", func(p *Proc) {
		p.Sleep(50)
		s.Broadcast()
	})
	if n := e.Run(); n != 0 {
		t.Fatalf("Run left %d procs blocked: %v", n, e.BlockedProcs())
	}
	if woken != 3 {
		t.Fatalf("woken = %d, want 3", woken)
	}
}

func TestWaitFor(t *testing.T) {
	e := New()
	s := NewSignal()
	ready := false
	var doneAt Time
	e.Go("waiter", func(p *Proc) {
		p.WaitFor(s, func() bool { return ready })
		doneAt = p.Now()
	})
	e.Go("pokes", func(p *Proc) {
		p.Sleep(10)
		s.Broadcast() // condition still false: waiter must re-block
		p.Sleep(10)
		ready = true
		s.Broadcast()
	})
	if n := e.Run(); n != 0 {
		t.Fatalf("deadlock: %v", e.BlockedProcs())
	}
	if doneAt != 20 {
		t.Fatalf("doneAt = %v, want 20", doneAt)
	}
}

func TestWaitForAlreadyTrue(t *testing.T) {
	e := New()
	s := NewSignal()
	done := false
	e.Go("p", func(p *Proc) {
		p.WaitFor(s, func() bool { return true })
		done = true
	})
	if n := e.Run(); n != 0 || !done {
		t.Fatalf("n=%d done=%v", n, done)
	}
}

func TestDeadlockReported(t *testing.T) {
	e := New()
	s := NewSignal()
	e.Go("stuck", func(p *Proc) { s.Wait(p) })
	n := e.Run()
	if n != 1 {
		t.Fatalf("Run = %d, want 1 blocked proc", n)
	}
	if got := e.BlockedProcs(); len(got) != 1 || got[0] != "stuck" {
		t.Fatalf("BlockedProcs = %v", got)
	}
	e.Close()
}

func TestCloseUnstartedProc(t *testing.T) {
	e := New()
	e.Go("never", func(p *Proc) { t.Error("body ran") })
	e.Close() // start event pending, goroutine parked before body
}

func TestCloseNestedBlocked(t *testing.T) {
	e := New()
	s := NewSignal()
	for i := 0; i < 10; i++ {
		e.Go("w", func(p *Proc) {
			p.Sleep(5)
			s.Wait(p)
		})
	}
	e.Run()
	e.Close()
	if len(e.BlockedProcs()) != 0 {
		t.Fatal("procs survived Close")
	}
}

func TestYieldOrdering(t *testing.T) {
	e := New()
	var got []string
	e.Go("a", func(p *Proc) {
		got = append(got, "a1")
		p.Yield()
		got = append(got, "a2")
	})
	e.Go("b", func(p *Proc) {
		got = append(got, "b1")
	})
	e.Run()
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestProcZeroSleepIsNoop(t *testing.T) {
	e := New()
	e.Go("p", func(p *Proc) {
		p.Sleep(0)
		p.Sleep(-10)
		if p.Now() != 0 {
			t.Errorf("time moved: %v", p.Now())
		}
	})
	e.Run()
}

// Property: any random batch of events fires in nondecreasing time
// order, and the engine clock equals the max event time afterwards.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		count := int(n%64) + 1
		var fired []Time
		var maxT Time
		for i := 0; i < count; i++ {
			d := Duration(rng.Int63n(1_000_000))
			if d > maxT {
				maxT = d
			}
			e.Schedule(d, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != count || e.Now() != maxT {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: simulation trajectories are reproducible — two identical
// runs with interleaved procs and events produce identical traces.
func TestPropertyDeterminism(t *testing.T) {
	run := func(seed int64) []Time {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		s := NewSignal()
		var trace []Time
		for i := 0; i < 8; i++ {
			d := Duration(rng.Int63n(1000))
			e.Go("p", func(p *Proc) {
				p.Sleep(d)
				trace = append(trace, p.Now())
				s.Broadcast()
				p.Sleep(d / 2)
				trace = append(trace, p.Now())
			})
		}
		e.Run()
		return trace
	}
	f := func(seed int64) bool {
		a, b := run(seed), run(seed)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.500µs"},
		{2 * Millisecond, "2.000ms"},
		{3 * Second, "3.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestPendingCount(t *testing.T) {
	e := New()
	tm := e.Schedule(5, func() {})
	e.Schedule(10, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d", e.Pending())
	}
	tm.Stop()
	if e.Pending() != 1 {
		t.Fatalf("Pending after Stop = %d", e.Pending())
	}
}
