# Mirrors .github/workflows/ci.yml: `make ci-fast` is exactly the CI
# fast job, `make race` the full job, `make golden-check` the
# golden-figures job, `make bench-ci` one leg of the bench job.
# Contributors who run these before pushing run exactly what CI runs.

GO ?= go
# The fast CI job pins the same staticcheck release; override to use
# a locally installed binary (STATICCHECK=staticcheck).
STATICCHECK ?= $(GO) run honnef.co/go/tools/cmd/staticcheck@2024.1.1

.PHONY: all build test test-short race fmt fmt-check vet lint bench bench-ci \
	golden golden-check stress multinic fattree nicoll adaptive benchalloc simd \
	dca examples linkcheck ci-fast ci-full

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needs to be run on:" >&2; \
		echo "$$out" >&2; \
		exit 1; \
	fi

vet:
	$(GO) vet ./...

lint: vet
	$(STATICCHECK) ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# The CI bench job's invocation: every figure benchmark once, five
# samples, tests skipped (compare runs with benchstat old.txt new.txt).
bench-ci:
	$(GO) test -bench . -benchtime 1x -count 5 -run '^$$' .

# Regenerate the golden rendering the golden-figures CI job diffs
# against. Commit the result together with the change that explains
# the drift.
golden:
	$(GO) run ./cmd/omxsim all > figures/testdata/omxsim-all.golden

golden-check:
	$(GO) run ./cmd/omxsim all > /tmp/omxsim-all.rendered
	diff -u figures/testdata/omxsim-all.golden /tmp/omxsim-all.rendered

# Long-run reliability battery: seeded message storms under network
# impairment across all three stack pairings, plus the interop and
# firmware loss tests, under the race detector. STRESS_SEEDS widens
# the sweep (the full CI job runs the tests' default seed count).
STRESS_SEEDS ?= 20
stress:
	OMXSIM_STRESS_SEEDS=$(STRESS_SEEDS) $(GO) test -race -count=1 \
		-run 'Stress|Storm|Loss|Impair|Recover|Fuzz' \
		./cluster ./internal/core ./internal/mxoe ./internal/interop ./figures

# Multi-NIC striping battery: the striped storms under per-lane
# impairment and cross-NIC skew (all three stack pairings), the
# stripe-reassembly fuzz corpus, per-NIC drop-attribution tests, the
# multinic figure guardrails and the 1-NIC ≡ legacy-path proof, under
# the race detector. STRESS_SEEDS widens the storm sweep.
multinic:
	OMXSIM_STRESS_SEEDS=$(STRESS_SEEDS) $(GO) test -race -count=1 \
		-run 'Striping|StripedLoss|StripeReassembly|MultiNIC|RingDropAttributed|1NICMatchesLegacy' \
		./cluster ./internal/core ./figures

# Fat-tree battery: topology/Build equivalence, ECMP determinism and
# spread, the trunk-incast drop-attribution storm, the 64-rank
# parallel==serial figure guardrail and the calendar-queue event-core
# tests, under the race detector.
fattree:
	$(GO) test -race -count=1 ./sim
	$(GO) test -race -count=1 -run 'FatTree|ECMP|Trunk|Topology|Build' \
		./cluster ./internal/wire ./figures

# NIC-offloaded collective battery: host≡firmware result equality
# (odd/single-rank/zero-byte worlds), dispatcher≡pinned for the
# offload tier, firmware loss recovery, the collective-frame drop
# gate on the host stack, and the nicoll figure guardrails
# (CPU-win acceptance + parallel==serial), under the race detector.
nicoll:
	$(GO) test -race -count=1 -run 'NIColl|Nicoll|CollDrop' \
		./mpi ./internal/core ./internal/mxoe ./figures

# Adaptive-transport battery: the adaptive-vs-static acceptance tests
# (never >10% below the best static policy, wins outright under loss),
# the adaptive storm/striping/incast stress rigs, the window-shadow
# fuzz corpus, trace-export conformance plus the golden trace, and the
# parallel==serial determinism guardrails — all under the race
# detector. STRESS_SEEDS widens the storm sweeps.
adaptive:
	OMXSIM_STRESS_SEEDS=$(STRESS_SEEDS) $(GO) test -race -count=1 \
		-run 'Adaptive|RTT|AIMD|Steer|Trace|GoldenCanary' \
		./cluster ./internal/core ./internal/mxoe ./internal/proto \
		./internal/simd ./sim/trace ./figures

# Memory-hierarchy battery: warmth-coverage and DMA/DCA ledger unit
# tests, registration-cache churn, the copy-rate decision table, the
# I/OAT engine (NUMA deposit costs included) and the dca figure
# guardrails (warm-consumer acceptance + parallel==serial), under the
# race detector.
dca:
	$(GO) test -race -count=1 ./internal/hostmem ./internal/memmodel ./internal/ioat
	$(GO) test -race -count=1 -run 'DCA|GoldenCanary' ./figures

# The omxsimd service battery: the multi-tenant HTTP job service
# end to end under the race detector — concurrent tenants whose sweep
# results must be bit-identical to direct figures calls, quota 429s,
# SSE monotonic delivery, graceful drain, the 4xx surface, the load
# smoke (100 sequential + 16 concurrent clients with a p99 latency
# bound), and the real-binary SIGTERM exit-0 test.
simd:
	$(GO) test -race -count=1 ./internal/simd ./cmd/omxsimd

# The event-core allocation gate: the calendar-queue benchmark must
# report exactly 0 allocs/op in steady state, or the zero-allocation
# claim (and with it the 512-rank CI budget) has regressed.
benchalloc:
	@out=$$($(GO) test -run '^$$' -bench 'BenchmarkEventCoreCalendar' -benchmem ./sim); \
	echo "$$out"; \
	allocs=$$(echo "$$out" | awk '/^BenchmarkEventCoreCalendar/ {print $$(NF-1)}'); \
	if [ -z "$$allocs" ]; then echo "benchalloc: benchmark did not run" >&2; exit 1; fi; \
	if [ "$$allocs" != "0" ]; then \
		echo "benchalloc: event core steady state allocates $$allocs allocs/op, want 0" >&2; \
		exit 1; \
	fi

# Run every committed godoc example (they are living documentation
# with verified Output comments).
examples:
	$(GO) test -run Example ./...

# Verify every relative link in every committed markdown file
# resolves (offline; external URLs are out of scope).
linkcheck:
	$(GO) test -run TestMarkdownLinks .

ci-fast: build vet lint fmt-check examples linkcheck test-short

ci-full: race stress multinic fattree nicoll adaptive benchalloc simd dca
