# Mirrors .github/workflows/ci.yml: `make ci-fast` is exactly the CI
# fast job, `make race` the full job. Contributors who run these
# before pushing run exactly what CI runs.

GO ?= go

.PHONY: all build test test-short race fmt fmt-check vet bench ci-fast ci-full

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needs to be run on:" >&2; \
		echo "$$out" >&2; \
		exit 1; \
	fi

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem ./...

ci-fast: build vet fmt-check test-short

ci-full: race
