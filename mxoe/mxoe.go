// Package mxoe is the public API of the native Myrinet Express over
// Ethernet stack — the paper's baseline. It implements the same
// transport interface as package openmx, so benchmarks and MPI run
// unchanged over either stack, and it is wire-compatible with Open-MX
// (the two interoperate over one link, as Open-MX was designed to do).
package mxoe

import (
	"omxsim/cluster"
	"omxsim/internal/cpu"
	"omxsim/internal/hostmem"
	"omxsim/internal/mxoe"
	"omxsim/internal/proto"
	"omxsim/openmx"
	"omxsim/sim"
)

// Config selects native-stack options.
type Config struct {
	// RegCache enables the registration cache (more valuable here
	// than in Open-MX: MX registration updates NIC translation
	// tables).
	RegCache bool
	// RegCacheEntries bounds the registration cache to this many
	// resident regions (LRU eviction deregisters the coldest past the
	// bound); 0 keeps it unbounded.
	RegCacheEntries int
	// DCATargetCore, on a platform with HasDCA (e.g.
	// platform.ClovertownDCA), steers the firmware's DMA deposits at
	// this core's LLC. 0 (the default) targets each receiving
	// endpoint's own core. Ignored without HasDCA.
	DCATargetCore int
	// RetransmitTimeout is the firmware's base retransmission
	// timeout (default 50 ms); RetransmitBackoff multiplies it per
	// consecutive unanswered attempt (default 2), capped at
	// RetransmitMax (default 16× the timeout). All firmware-level:
	// retransmission costs the host no CPU.
	RetransmitTimeout sim.Duration
	RetransmitBackoff float64
	RetransmitMax     sim.Duration
	// Adaptive enables the firmware's self-tuning transport tier:
	// retransmission timeouts derived from per-peer SRTT/RTTVAR
	// (unless RetransmitTimeout is set explicitly) and an AIMD pull
	// window bounded by [2, 4 x NICs] instead of the fixed two blocks
	// per lane. Off (the default) keeps the static firmware behavior
	// bit-identical.
	Adaptive bool
}

// Stats re-exports the firmware protocol counters.
type Stats = mxoe.Stats

// CollStats re-exports the per-stack firmware-collective counters
// (descriptors posted per operation, tree frames, hop acks,
// retransmissions, duplicate suppression, combined reduction bytes).
type CollStats = mxoe.CollStats

// CollMaxBytes is the largest payload the firmware accepts per
// offloaded collective; larger payloads stay on the host algorithms.
const CollMaxBytes = mxoe.CollMaxBytes

// Stack is a native MXoE instance attached to a host (its NIC runs in
// firmware mode: no interrupts, no bottom halves).
type Stack struct {
	h *cluster.Host
	s *mxoe.Stack
}

// Attach builds the native stack on a host.
func Attach(h *cluster.Host, cfg Config) *Stack {
	return &Stack{h: h, s: mxoe.Attach(h.Machine(), mxoe.Config{
		RegCache:          cfg.RegCache,
		RegCacheEntries:   cfg.RegCacheEntries,
		DCATargetCore:     cfg.DCATargetCore,
		RetransmitTimeout: cfg.RetransmitTimeout,
		RetransmitBackoff: cfg.RetransmitBackoff,
		RetransmitMax:     cfg.RetransmitMax,
		Adaptive:          cfg.Adaptive,
	})}
}

// Stats exposes the firmware's protocol counters (retransmissions,
// duplicate suppression, queue drops, per-NIC transmit counts on
// multi-NIC hosts) for tests and diagnostics. The firmware stripes
// eager fragments and pull blocks round-robin across an aggregated
// link's NICs (cluster.MultiNIC) with two pull blocks in flight per
// NIC; NICTxFrames reports the resulting balance.
func (s *Stack) Stats() Stats { return s.s.Stats }

// RegStats snapshots the stack's registration-cache counters (zero
// value when Config.RegCache is off).
func (s *Stack) RegStats() hostmem.RegStats { return s.s.RegStats() }

// CPUStats re-exports the deterministic per-core CPU ledger snapshot
// (see openmx.CPUStats). Native MX leaves the receive path to NIC
// firmware, so its snapshots show essentially only user-library and
// application-compute time — the baseline the paper's availability
// argument is measured against.
type CPUStats = openmx.CPUStats

// CPUCategory labels one busy-time ledger (see CPUCategories).
type CPUCategory = cpu.Category

// The accounting categories, mirrored here so mxoe-only consumers
// can interpret CPUStats without importing openmx.
const (
	CPUUserLib    = cpu.UserLib
	CPUDriver     = cpu.DriverCmd
	CPUBHProc     = cpu.BHProc
	CPUBHCopy     = cpu.BHCopy
	CPUIOATSubmit = cpu.IOATSubmit
	CPUAppCompute = cpu.AppCompute
	CPUOther      = cpu.Other
)

// CPUCategories returns every accounting category in ledger order.
func CPUCategories() []CPUCategory { return cpu.Categories() }

// CPUStats snapshots the host's CPU accounting since the last
// ResetCPUStats (or the start of the run).
func (s *Stack) CPUStats() CPUStats { return s.s.H.Sys.Snapshot() }

// ResetCPUStats zeroes the host's CPU ledgers and starts a new
// accounting window.
func (s *Stack) ResetCPUStats() { s.s.H.Sys.ResetAccounting() }

// HostName implements openmx.Transport.
func (s *Stack) HostName() string { return s.h.Name }

// Inner exposes the internal firmware stack for in-module tooling
// (trace capture); external callers should treat it as opaque.
func (s *Stack) Inner() *mxoe.Stack { return s.s }

// Open creates endpoint id bound to the given core.
func (s *Stack) Open(id, coreID int) openmx.Endpoint {
	return &endpoint{ep: s.s.OpenEndpoint(id, coreID)}
}

type endpoint struct {
	ep *mxoe.Endpoint
}

type request struct {
	r *mxoe.Request
}

func (r request) Done() bool { return r.r.Done() }
func (r request) Len() int   { return r.r.Len }
func (r request) Sender() openmx.Addr {
	return openmx.Addr{Host: r.r.SenderAddr.Host, EP: r.r.SenderAddr.EP}
}
func (r request) Match() uint64 { return r.r.MatchInfo }

func (e *endpoint) Addr() openmx.Addr {
	a := e.ep.Addr()
	return openmx.Addr{Host: a.Host, EP: a.EP}
}

func (e *endpoint) ISend(p *sim.Proc, dst openmx.Addr, match uint64, buf *cluster.Buffer, off, n int) openmx.Request {
	return request{e.ep.ISend(p, proto.Addr{Host: dst.Host, EP: dst.EP}, match, buf.Raw(), off, n)}
}

func (e *endpoint) IRecv(p *sim.Proc, match, mask uint64, buf *cluster.Buffer, off, n int) openmx.Request {
	return request{e.ep.IRecv(p, match, mask, buf.Raw(), off, n)}
}

func (e *endpoint) Wait(p *sim.Proc, r openmx.Request) { e.ep.Wait(p, r.(request).r) }

func (e *endpoint) Test(p *sim.Proc, r openmx.Request) bool { return e.ep.Test(p, r.(request).r) }

func (e *endpoint) Progress(p *sim.Proc) bool { return e.ep.Progress(p) }

// CollJoin implements openmx.CollCapable: it registers this
// endpoint's membership in the collective group defined by members
// (every rank's endpoint address, in rank order) and returns the
// descriptor-post API backed by the NIC's firmware state machines.
func (e *endpoint) CollJoin(members []openmx.Addr) openmx.CollGroup {
	ms := make([]proto.Addr, len(members))
	for i, m := range members {
		ms[i] = proto.Addr{Host: m.Host, EP: m.EP}
	}
	return collGroup{g: e.ep.CollJoin(ms)}
}

// CollMaxBytes implements openmx.CollCapable.
func (e *endpoint) CollMaxBytes() int { return mxoe.CollMaxBytes }

type collGroup struct {
	g *mxoe.CollGroup
}

func (g collGroup) Size() int { return g.g.Size() }
func (g collGroup) Rank() int { return g.g.Rank() }

func (g collGroup) PostBarrier(p *sim.Proc) openmx.Request {
	return request{g.g.PostBarrier(p)}
}

func (g collGroup) PostBcast(p *sim.Proc, root int, buf *cluster.Buffer, off, n int) openmx.Request {
	return request{g.g.PostBcast(p, root, buf.Raw(), off, n)}
}

func (g collGroup) PostAllreduce(p *sim.Proc, sbuf, rbuf *cluster.Buffer, n int) openmx.Request {
	return request{g.g.PostAllreduce(p, sbuf.Raw(), rbuf.Raw(), n)}
}

func (g collGroup) PostScan(p *sim.Proc, sbuf, rbuf *cluster.Buffer, n int) openmx.Request {
	return request{g.g.PostScan(p, sbuf.Raw(), rbuf.Raw(), n)}
}
