package omxsim

// The markdown link checker the fast CI job runs: every relative link
// in every committed markdown file must resolve to a file or
// directory in the repository, so docs cannot silently rot as files
// move. External (http/https/mailto) links are out of scope — CI must
// not depend on the network.

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links/images: [text](target). Code
// spans are stripped before matching.
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// refDef matches reference-style link definitions: [label]: target.
var refDef = regexp.MustCompile(`(?m)^\s*\[[^\]]+\]:\s+(\S+)`)

// codeSpan strips inline code and fenced blocks so example snippets
// (e.g. badge templates with placeholder OWNER/REPO) are not checked.
var codeSpan = regexp.MustCompile("`[^`]*`")

func markdownFiles(t *testing.T) []string {
	t.Helper()
	var files []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// Skip hidden trees (.git, .claude worktrees/skills, editor
			// state) and testdata: the gate covers the documentation
			// tree, not scratch or tool-managed files.
			if name := d.Name(); name == "testdata" ||
				(strings.HasPrefix(name, ".") && path != ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.EqualFold(filepath.Ext(path), ".md") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no markdown files found — checker miswired?")
	}
	return files
}

func TestMarkdownLinks(t *testing.T) {
	for _, file := range markdownFiles(t) {
		raw, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		var clean []string
		inFence := false
		for _, line := range strings.Split(string(raw), "\n") {
			if strings.HasPrefix(strings.TrimSpace(line), "```") {
				inFence = !inFence
				continue
			}
			if !inFence {
				clean = append(clean, codeSpan.ReplaceAllString(line, ""))
			}
		}
		text := strings.Join(clean, "\n")
		links := mdLink.FindAllStringSubmatch(text, -1)
		links = append(links, refDef.FindAllStringSubmatch(text, -1)...)
		for _, m := range links {
			target := m[1]
			switch {
			case strings.Contains(target, "://"), strings.HasPrefix(target, "mailto:"):
				continue // external: not checked offline
			case strings.HasPrefix(target, "#"):
				continue // intra-document anchor
			}
			target, _, _ = strings.Cut(target, "#")
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken relative link %q (resolved %q): %v", file, m[1], resolved, err)
			}
		}
	}
}
