package openmx_test

import (
	"fmt"

	"omxsim/cluster"
	"omxsim/openmx"
	"omxsim/platform"
	"omxsim/sim"
)

// Example shows the minimal Open-MX round trip: two hosts linked back
// to back, one endpoint each, a tagged send matched by a receive. The
// simulation is deterministic, so the completion facts below are a
// committed guarantee, not a flaky timing observation.
func Example() {
	c := cluster.New(nil) // nil platform = the paper's Clovertown testbed
	defer c.Close()
	n0, n1 := c.NewHost("n0"), c.NewHost("n1")
	cluster.Link(n0, n1)

	s0 := openmx.Attach(n0, openmx.Config{IOAT: true, RegCache: true})
	s1 := openmx.Attach(n1, openmx.Config{IOAT: true, RegCache: true})
	e0, e1 := s0.Open(0, 2), s1.Open(0, 2)

	const n = 64 << 10
	src, dst := n0.Alloc(n), n1.Alloc(n)
	src.Fill(0xA5)

	var got openmx.Request
	c.Go("recv", func(p *sim.Proc) {
		got = e1.IRecv(p, 42, ^uint64(0), dst, 0, n)
		e1.Wait(p, got)
	})
	c.Go("send", func(p *sim.Proc) {
		e0.Wait(p, e0.ISend(p, e1.Addr(), 42, src, 0, n))
	})
	c.Run()

	fmt.Printf("received %d bytes from %s, match %d\n", got.Len(), got.Sender().Host, got.Match())
	fmt.Printf("payload verified: %v\n", cluster.Equal(src, dst))
	// Output:
	// received 65536 bytes from n0, match 42
	// payload verified: true
}

// ExampleStack_CPUStats demonstrates the per-core CPU ledgers: after
// an offloaded large-message receive, the receiving host shows
// bottom-half protocol time and I/OAT submission time, but the bulk
// copy itself ran on the DMA engine — the paper's availability
// argument in two booleans.
func ExampleStack_CPUStats() {
	c := cluster.New(nil)
	defer c.Close()
	n0, n1 := c.NewHost("n0"), c.NewHost("n1")
	cluster.Link(n0, n1)
	s0 := openmx.Attach(n0, openmx.Config{IOAT: true, RegCache: true})
	s1 := openmx.Attach(n1, openmx.Config{IOAT: true, RegCache: true})
	e0, e1 := s0.Open(0, 2), s1.Open(0, 2)

	const n = 1 << 20
	src, dst := n0.Alloc(n), n1.Alloc(n)
	c.Go("recv", func(p *sim.Proc) {
		r := e1.IRecv(p, 1, ^uint64(0), dst, 0, n)
		e1.Wait(p, r)
	})
	c.Go("send", func(p *sim.Proc) {
		e0.Wait(p, e0.ISend(p, e1.Addr(), 1, src, 0, n))
	})
	c.Run()

	st := s1.CPUStats() // deterministic snapshot of every core's ledgers
	fmt.Printf("cores: %d\n", len(st.Cores))
	fmt.Printf("bottom-half protocol time > 0: %v\n", st.Busy(openmx.CPUBHProc) > 0)
	fmt.Printf("ioat submission time > 0: %v\n", st.Busy(openmx.CPUIOATSubmit) > 0)
	fmt.Printf("submission cheaper than 10%% of window: %v\n",
		st.BusyPct(openmx.CPUIOATSubmit) < 10)
	// Output:
	// cores: 8
	// bottom-half protocol time > 0: true
	// ioat submission time > 0: true
	// submission cheaper than 10% of window: true
}

// ExampleProbeThresholds runs the adaptive autotuner's startup probe
// against the modelled Clovertown platform. The crossover points it
// picks land within a factor of two of the constants the paper chose
// by hand (32 kB eager→rendezvous, 32 kB local I/OAT switch); setting
// Config.AutoTune applies the same probe when a stack attaches.
func ExampleProbeThresholds() {
	th := openmx.ProbeThresholds(platform.Clovertown())
	d := openmx.Defaults()
	within2x := func(tuned, paper int) bool { return tuned >= paper/2 && tuned <= paper*2 }
	fmt.Printf("eager->rndv within 2x of paper: %v\n", within2x(th.LargeThreshold, d.LargeThreshold))
	fmt.Printf("local I/OAT within 2x of paper: %v\n", within2x(th.ShmIOATThreshold, d.ShmIOATThreshold))
	fmt.Printf("offload fragment floor: %d bytes\n", th.IOATMinFrag)
	// Output:
	// eager->rndv within 2x of paper: true
	// local I/OAT within 2x of paper: true
	// offload fragment floor: 1024 bytes
}
