// Package openmx is the public API of the Open-MX stack: MX-style
// endpoints with ISend/IRecv/Wait verbs, 64-bit matching, and the
// paper's configuration knobs (I/OAT copy offload, registration cache,
// thresholds).
//
// It also defines the transport-neutral Endpoint/Request interfaces
// that the mpi and imb packages program against, so every benchmark
// runs identically over Open-MX and the native MXoE baseline.
//
//	c := cluster.New(nil)
//	n0, n1 := c.NewHost("n0"), c.NewHost("n1")
//	cluster.Link(n0, n1)
//	s0 := openmx.Attach(n0, openmx.Config{IOAT: true})
//	s1 := openmx.Attach(n1, openmx.Config{IOAT: true})
//	e0, e1 := s0.Open(0, 2), s1.Open(0, 2)
//	c.Go("recv", func(p *sim.Proc) {
//	    r := e1.IRecv(p, 42, ^uint64(0), dst, 0, dst.Size())
//	    e1.Wait(p, r)
//	})
//	c.Go("send", func(p *sim.Proc) {
//	    e0.Wait(p, e0.ISend(p, e1.Addr(), 42, src, 0, src.Size()))
//	})
//	c.Run()
package openmx

import (
	"omxsim/cluster"
	"omxsim/internal/core"
	"omxsim/internal/cpu"
	"omxsim/internal/hostmem"
	"omxsim/internal/proto"
	"omxsim/platform"
	"omxsim/sim"
)

// Addr identifies an endpoint: host name plus endpoint index.
type Addr struct {
	Host string
	EP   int
}

func (a Addr) internal() proto.Addr  { return proto.Addr{Host: a.Host, EP: a.EP} }
func fromInternal(a proto.Addr) Addr { return Addr{Host: a.Host, EP: a.EP} }

// Config selects the stack's optimizations and thresholds; it is the
// Open-MX configuration from the paper (see internal/core.Config for
// field documentation). The zero value is the plain memcpy stack with
// the paper's default thresholds.
type Config = core.Config

// Defaults returns the paper's default thresholds.
func Defaults() Config { return core.Defaults() }

// Stripe policies for Config.StripePolicy on multi-NIC hosts
// (cluster.MultiNIC): round-robin stripes the units of each message —
// eager fragments, pull blocks — across NIC lanes (the default, and
// the one that aggregates bandwidth); hash pins each message to one
// lane like a switch's L3/L4 flow hash; single disables aggregation.
// Stats().NICTxFrames and cluster.NetStats report the resulting
// per-NIC balance.
const (
	StripeRoundRobin = core.StripeRoundRobin
	StripeHash       = core.StripeHash
	StripeSingle     = core.StripeSingle
)

// AutoTuned returns an I/OAT-enabled configuration whose offload and
// protocol thresholds are derived from startup microbenchmarks of the
// given platform instead of the paper's empirical constants (the
// Section VI auto-tuning proposal). Setting Config.AutoTune instead
// runs the same probe when the stack attaches, filling only the
// thresholds the caller left unset.
func AutoTuned(p *platform.Platform) Config { return core.AutoTuned(p) }

// Thresholds is the full set of protocol/offload thresholds the
// adaptive autotuner derives (see ProbeThresholds).
type Thresholds = core.Thresholds

// ProbeThresholds probes the platform's memcpy and I/OAT cost curves
// and returns the crossover points the autotuner would pick: the
// eager→rendezvous switch, the local memcpy→I/OAT switch, and the
// asynchronous-offload floor (minimum message and fragment sizes).
func ProbeThresholds(p *platform.Platform) Thresholds { return core.ProbeThresholds(p) }

// Request is a transport-neutral in-flight operation handle.
type Request interface {
	// Done reports completion (driven by Wait/Test/Progress).
	Done() bool
	// Len reports the delivered byte count of a completed receive.
	Len() int
	// Sender reports the source address of a completed receive.
	Sender() Addr
	// Match reports the matched message's 64-bit match value.
	Match() uint64
}

// Endpoint is the transport-neutral communication interface
// implemented by both Open-MX and native MXoE endpoints.
type Endpoint interface {
	Addr() Addr
	ISend(p *sim.Proc, dst Addr, match uint64, buf *cluster.Buffer, off, n int) Request
	IRecv(p *sim.Proc, match, mask uint64, buf *cluster.Buffer, off, n int) Request
	Wait(p *sim.Proc, r Request)
	Test(p *sim.Proc, r Request) bool
	Progress(p *sim.Proc) bool
}

// Transport opens endpoints on one host's stack.
type Transport interface {
	Open(id, core int) Endpoint
	HostName() string
}

// CollGroup is a registered collective group on a NIC whose firmware
// runs offloaded collectives. Each Post verb writes one descriptor to
// the NIC and returns a Request that completes on the collective's
// single completion event — every tree hop in between runs in
// firmware with zero host CPU. All members must post the same
// collectives in the same order (the usual MPI rule); payloads are
// little-endian float64 sums for the reductions, capped at the
// capability's CollMaxBytes.
type CollGroup interface {
	// Size is the member count; Rank this endpoint's member index.
	Size() int
	Rank() int
	// PostBarrier joins the firmware barrier.
	PostBarrier(p *sim.Proc) Request
	// PostBcast sends (on the root, from buf, snapshot at post) or
	// receives (elsewhere, into buf by NIC DMA) a broadcast.
	PostBcast(p *sim.Proc, root int, buf *cluster.Buffer, off, n int) Request
	// PostAllreduce combines every member's sbuf (float64 sum, in
	// firmware) and deposits the result in every member's rbuf.
	PostAllreduce(p *sim.Proc, sbuf, rbuf *cluster.Buffer, n int) Request
	// PostScan deposits the inclusive prefix sum of contributions
	// 0..Rank() in rbuf.
	PostScan(p *sim.Proc, sbuf, rbuf *cluster.Buffer, n int) Request
}

// CollCapable is implemented by endpoints whose NIC firmware runs
// offloaded collectives (the native MXoE stack). CollJoin registers a
// group from the full member list — every participant's endpoint
// address in rank order; all members derive the same group identity
// locally, with no wire traffic. Callers select offload by
// type-asserting this interface (mpi.Tuning's Offload dimension does
// exactly that).
type CollCapable interface {
	CollJoin(members []Addr) CollGroup
	// CollMaxBytes is the largest payload the firmware accepts per
	// offloaded collective.
	CollMaxBytes() int
}

// Stack is an Open-MX instance attached to a host.
type Stack struct {
	h *cluster.Host
	s *core.Stack
}

// Attach builds an Open-MX stack (driver + library) on the host and
// switches its NIC to the generic Ethernet receive path.
func Attach(h *cluster.Host, cfg Config) *Stack {
	return &Stack{h: h, s: core.Attach(h.Machine(), cfg)}
}

// HostName implements Transport.
func (s *Stack) HostName() string { return s.h.Name }

// Stats exposes protocol counters (retransmissions, I/OAT submits,
// cleanup frees, ...) for tests and diagnostics.
func (s *Stack) Stats() core.Stats { return s.s.Stats }

// CPUStats is a deterministic snapshot of the host's per-core CPU
// ledgers: busy time per accounting category (user library, driver,
// bottom-half processing and copies, I/OAT submission, application
// compute) plus the idle remainder of the window. See CPUCategories
// for the ledger order.
type CPUStats = cpu.Stats

// CPUCategory labels one busy-time ledger; CPUCategories returns them
// in ledger order.
type CPUCategory = cpu.Category

// The accounting categories, re-exported for CPUStats consumers.
const (
	CPUUserLib    = cpu.UserLib
	CPUDriver     = cpu.DriverCmd
	CPUBHProc     = cpu.BHProc
	CPUBHCopy     = cpu.BHCopy
	CPUIOATSubmit = cpu.IOATSubmit
	CPUAppCompute = cpu.AppCompute
	CPUOther      = cpu.Other
)

// CPUCategories returns every accounting category in ledger order.
func CPUCategories() []CPUCategory { return cpu.Categories() }

// CPUStats snapshots the host's CPU accounting since the last
// ResetCPUStats (or since the start of the run). The snapshot covers
// the whole machine — every stack and process on the host shares the
// same cores — and is deterministic: identical runs yield identical
// snapshots.
func (s *Stack) CPUStats() CPUStats { return s.s.H.Sys.Snapshot() }

// ResetCPUStats zeroes the host's CPU ledgers and starts a new
// accounting window (e.g. after a warm-up phase).
func (s *Stack) ResetCPUStats() { s.s.H.Sys.ResetAccounting() }

// RegStats is a snapshot of the stack's registration-cache counters:
// hits and misses (which sum to the posts that consulted the cache),
// LRU evictions, and the currently resident regions with their pinned
// pages.
type RegStats = hostmem.RegStats

// RegStats snapshots the registration cache (zero value when
// Config.RegCache is off).
func (s *Stack) RegStats() RegStats { return s.s.RegStats() }

// Inner exposes the internal stack for in-module tooling (timeline
// tracing); external callers should treat it as opaque.
func (s *Stack) Inner() *core.Stack { return s.s }

// Open creates endpoint id bound to the given core and returns it.
func (s *Stack) Open(id, coreID int) Endpoint {
	return &endpoint{ep: s.s.OpenEndpoint(id, coreID)}
}

type endpoint struct {
	ep *core.Endpoint
}

type request struct {
	r *core.Request
}

func (r request) Done() bool    { return r.r.Done() }
func (r request) Len() int      { return r.r.Len }
func (r request) Sender() Addr  { return fromInternal(r.r.SenderAddr) }
func (r request) Match() uint64 { return r.r.MatchInfo }

func (e *endpoint) Addr() Addr { return fromInternal(e.ep.Addr()) }

func (e *endpoint) ISend(p *sim.Proc, dst Addr, match uint64, buf *cluster.Buffer, off, n int) Request {
	return request{e.ep.ISend(p, dst.internal(), match, buf.Raw(), off, n)}
}

func (e *endpoint) IRecv(p *sim.Proc, match, mask uint64, buf *cluster.Buffer, off, n int) Request {
	return request{e.ep.IRecv(p, match, mask, buf.Raw(), off, n)}
}

func (e *endpoint) Wait(p *sim.Proc, r Request) { e.ep.Wait(p, r.(request).r) }

func (e *endpoint) Test(p *sim.Proc, r Request) bool { return e.ep.Test(p, r.(request).r) }

func (e *endpoint) Progress(p *sim.Proc) bool { return e.ep.Progress(p) }
