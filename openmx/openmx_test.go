package openmx_test

import (
	"testing"

	"omxsim/cluster"
	"omxsim/mxoe"
	"omxsim/openmx"
	"omxsim/platform"
	"omxsim/sim"
)

// The facade tests exercise the public API exactly as a downstream
// user would, over both transports.

func roundTrip(t *testing.T, mk func(h *cluster.Host) openmx.Transport, n int) {
	t.Helper()
	c := cluster.New(nil)
	defer c.Close()
	n0, n1 := c.NewHost("n0"), c.NewHost("n1")
	cluster.Link(n0, n1)
	e0, e1 := mk(n0).Open(0, 2), mk(n1).Open(0, 2)
	src, dst := n0.Alloc(n), n1.Alloc(n)
	src.Fill(0x5C)
	var got openmx.Request
	c.Go("recv", func(p *sim.Proc) {
		r := e1.IRecv(p, 7, ^uint64(0), dst, 0, n)
		e1.Wait(p, r)
		got = r
	})
	c.Go("send", func(p *sim.Proc) {
		e0.Wait(p, e0.ISend(p, e1.Addr(), 7, src, 0, n))
	})
	if blocked := c.Run(); blocked != 0 {
		t.Fatalf("deadlock (%d)", blocked)
	}
	if !got.Done() || got.Len() != n || got.Match() != 7 {
		t.Fatalf("completion info: done=%v len=%d match=%d", got.Done(), got.Len(), got.Match())
	}
	if got.Sender() != (openmx.Addr{Host: "n0", EP: 0}) {
		t.Fatalf("sender = %+v", got.Sender())
	}
	if !cluster.Equal(src, dst) {
		t.Fatal("payload corrupted")
	}
}

func TestOpenMXFacade(t *testing.T) {
	roundTrip(t, func(h *cluster.Host) openmx.Transport {
		return openmx.Attach(h, openmx.Config{IOAT: true})
	}, 1<<20)
}

func TestMXoEFacade(t *testing.T) {
	roundTrip(t, func(h *cluster.Host) openmx.Transport {
		return mxoe.Attach(h, mxoe.Config{RegCache: true})
	}, 1<<20)
}

func TestTestAndProgress(t *testing.T) {
	c := cluster.New(nil)
	defer c.Close()
	n0, n1 := c.NewHost("n0"), c.NewHost("n1")
	cluster.Link(n0, n1)
	cfg := openmx.Config{}
	e0 := openmx.Attach(n0, cfg).Open(0, 2)
	e1 := openmx.Attach(n1, cfg).Open(0, 2)
	src, dst := n0.Alloc(256), n1.Alloc(256)
	c.Go("recv", func(p *sim.Proc) {
		r := e1.IRecv(p, 1, ^uint64(0), dst, 0, 256)
		if e1.Test(p, r) {
			t.Error("Test true before any traffic")
		}
		for !e1.Test(p, r) {
			p.Sleep(sim.Microsecond)
		}
	})
	c.Go("send", func(p *sim.Proc) {
		e0.Wait(p, e0.ISend(p, e1.Addr(), 1, src, 0, 256))
	})
	if blocked := c.Run(); blocked != 0 {
		t.Fatal("deadlock")
	}
}

func TestStatsExposed(t *testing.T) {
	c := cluster.New(nil)
	defer c.Close()
	n0, n1 := c.NewHost("n0"), c.NewHost("n1")
	cluster.Link(n0, n1)
	cfg := openmx.Config{IOAT: true}
	s0 := openmx.Attach(n0, cfg)
	s1 := openmx.Attach(n1, cfg)
	e0, e1 := s0.Open(0, 2), s1.Open(0, 2)
	src, dst := n0.Alloc(1<<20), n1.Alloc(1<<20)
	c.Go("recv", func(p *sim.Proc) {
		r := e1.IRecv(p, 1, ^uint64(0), dst, 0, 1<<20)
		e1.Wait(p, r)
	})
	c.Go("send", func(p *sim.Proc) {
		e0.Wait(p, e0.ISend(p, e1.Addr(), 1, src, 0, 1<<20))
	})
	c.Run()
	if s1.Stats().IOATSubmits == 0 || s0.Stats().RndvSent != 1 {
		t.Fatalf("stats: %+v / %+v", s0.Stats(), s1.Stats())
	}
}

func TestCPUStatsExposed(t *testing.T) {
	c := cluster.New(nil)
	defer c.Close()
	n0, n1 := c.NewHost("n0"), c.NewHost("n1")
	cluster.Link(n0, n1)
	s0 := openmx.Attach(n0, openmx.Config{IOAT: true})
	s1 := openmx.Attach(n1, openmx.Config{IOAT: true})
	e0, e1 := s0.Open(0, 2), s1.Open(0, 2)
	src, dst := n0.Alloc(1<<20), n1.Alloc(1<<20)
	c.Go("recv", func(p *sim.Proc) {
		r := e1.IRecv(p, 1, ^uint64(0), dst, 0, 1<<20)
		e1.Wait(p, r)
	})
	c.Go("send", func(p *sim.Proc) {
		e0.Wait(p, e0.ISend(p, e1.Addr(), 1, src, 0, 1<<20))
	})
	c.Run()
	st := s1.CPUStats()
	if st.Window <= 0 || len(st.Cores) != 8 {
		t.Fatalf("snapshot shape: window=%v cores=%d", st.Window, len(st.Cores))
	}
	// The offloaded receive must show bottom-half, library and
	// submission time in the ledgers.
	if st.Busy(openmx.CPUBHProc) == 0 || st.Busy(openmx.CPUUserLib) == 0 ||
		st.Busy(openmx.CPUIOATSubmit) == 0 {
		t.Fatalf("ledgers empty:\n%s", st.Render())
	}
	// Idle + busy covers each core's window exactly.
	for _, cs := range st.Cores {
		if cs.TotalBusy()+cs.Idle != st.Window {
			t.Fatalf("core %d busy+idle != window:\n%s", cs.Core, st.Render())
		}
	}
	// Reset starts a fresh window.
	s1.ResetCPUStats()
	if after := s1.CPUStats(); after.Window != 0 || after.Busy() != 0 {
		t.Fatalf("reset did not clear the window: %+v", after)
	}
	// The native baseline surfaces the same snapshot type with a
	// firmware receive path: no bottom-half time at all.
	c2 := cluster.New(nil)
	defer c2.Close()
	m0, m1 := c2.NewHost("m0"), c2.NewHost("m1")
	cluster.Link(m0, m1)
	t0 := mxoe.Attach(m0, mxoe.Config{})
	t1 := mxoe.Attach(m1, mxoe.Config{})
	f0, f1 := t0.Open(0, 2), t1.Open(0, 2)
	msrc, mdst := m0.Alloc(1<<20), m1.Alloc(1<<20)
	c2.Go("recv", func(p *sim.Proc) {
		r := f1.IRecv(p, 1, ^uint64(0), mdst, 0, 1<<20)
		f1.Wait(p, r)
	})
	c2.Go("send", func(p *sim.Proc) {
		f0.Wait(p, f0.ISend(p, f1.Addr(), 1, msrc, 0, 1<<20))
	})
	c2.Run()
	// The mxoe package mirrors the category constants, so mxoe-only
	// consumers can interpret the ledgers without importing openmx.
	mst := t1.CPUStats()
	if mst.Busy(mxoe.CPUBHProc, mxoe.CPUBHCopy) != 0 {
		t.Fatalf("native MX shows bottom-half time:\n%s", mst.Render())
	}
	if mst.Busy(mxoe.CPUUserLib) == 0 {
		t.Fatalf("native MX shows no library time:\n%s", mst.Render())
	}
	if len(mxoe.CPUCategories()) != len(openmx.CPUCategories()) {
		t.Fatal("mxoe and openmx disagree on the category set")
	}
}

func TestAutoTunedPublic(t *testing.T) {
	cfg := openmx.AutoTuned(platform.Clovertown())
	if !cfg.IOAT || cfg.IOATMinFrag == 0 || cfg.IOATMinMsg == 0 {
		t.Fatalf("AutoTuned = %+v", cfg)
	}
	if cfg.IOATMinFrag < 512 || cfg.IOATMinFrag > 4096 {
		t.Fatalf("tuned fragment threshold %d out of the paper's decade", cfg.IOATMinFrag)
	}
}

func TestDefaultsMatchPaper(t *testing.T) {
	d := openmx.Defaults()
	if d.LargeThreshold != 32*1024 || d.IOATMinFrag != 1024 ||
		d.IOATMinMsg != 64*1024 || d.PullBlockFrags != 8 || d.PullBlocks != 2 {
		t.Fatalf("defaults drifted: %+v", d)
	}
}
