// interop demonstrates the wire compatibility the paper builds on: an
// Open-MX host on a commodity Ethernet NIC exchanging messages with a
// host running Myricom's native MXoE firmware — the exact mixed
// configuration of the BlueGene/P PVFS2 deployment described in
// Section II-A (Open-MX compute nodes, native-MX I/O nodes).
package main

import (
	"fmt"

	"omxsim/cluster"
	"omxsim/mxoe"
	"omxsim/openmx"
	"omxsim/sim"
)

func main() {
	c := cluster.New(nil)
	omxNode := c.NewHost("compute0") // Broadcom-style commodity NIC
	mxNode := c.NewHost("ionode0")   // Myri-10G running native MXoE
	cluster.Link(omxNode, mxNode)

	omxEP := openmx.Attach(omxNode, openmx.Config{IOAT: true, RegCache: true}).Open(0, 2)
	mxEP := mxoe.Attach(mxNode, mxoe.Config{RegCache: true}).Open(0, 2)

	const size = 2 << 20
	out := omxNode.Alloc(size)
	in := omxNode.Alloc(size)
	ioBuf := mxNode.Alloc(size)
	out.Fill(9)

	// Compute node writes a chunk to the I/O node, then reads it back
	// (a PVFS2-style round trip across the two stacks).
	c.Go("io-node", func(p *sim.Proc) {
		r := mxEP.IRecv(p, 1, ^uint64(0), ioBuf, 0, size)
		mxEP.Wait(p, r)
		fmt.Printf("io-node:  stored %d bytes from %s (native MX receive, zero host copies)\n",
			r.Len(), r.Sender().Host)
		s := mxEP.ISend(p, omxEP.Addr(), 2, ioBuf, 0, size)
		mxEP.Wait(p, s)
	})
	var done sim.Time
	c.Go("compute", func(p *sim.Proc) {
		s := omxEP.ISend(p, mxEP.Addr(), 1, out, 0, size)
		omxEP.Wait(p, s)
		r := omxEP.IRecv(p, 2, ^uint64(0), in, 0, size)
		omxEP.Wait(p, r)
		done = p.Now()
	})
	if c.Run() != 0 {
		panic("deadlock")
	}
	fmt.Printf("compute:  write+read of %d MiB round-tripped in %v\n", size>>20, done)
	fmt.Printf("payload survived both stacks: %v\n", cluster.Equal(out, in))
	fmt.Println("(same wire format both ways: Open-MX pulls from MX firmware and vice versa)")
}
