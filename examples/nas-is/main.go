// nas-is runs the NAS-Integer-Sort-style bucket exchange (Section
// IV-D: "up to 10 % performance increase on the NAS parallel
// benchmarks, especially on IS which relies on large messages") over
// the three stacks: native MXoE, plain Open-MX, and Open-MX with
// I/OAT copy offload (network and shared-memory).
package main

import (
	"fmt"

	"omxsim/figures"
)

func main() {
	// 2^17 keys per rank → ≈512 KiB exchanged per rank per iteration,
	// solidly in the large-message regime I/OAT accelerates.
	results := figures.NASIS(1<<17, 3)
	fmt.Print(figures.RenderNASIS(results))
}
