// nas-is runs the NAS-Integer-Sort-style bucket exchange (Section
// IV-D: "up to 10 % performance increase on the NAS parallel
// benchmarks, especially on IS which relies on large messages") over
// the three stacks: native MXoE, plain Open-MX, and Open-MX with
// I/OAT copy offload (network and shared-memory).
//
// The proxy is built on the real MPI collectives: each iteration
// exchanges the key bins with Alltoallv and verifies the global key
// census (count and sum of the bytes that actually arrived) with an
// Allreduce; per-rank loop times are collected with a Gather and the
// slowest rank is reported.
package main

import (
	"flag"
	"fmt"

	"omxsim/figures"
)

func main() {
	// 2^17 keys per rank → ≈512 KiB exchanged per rank per iteration,
	// solidly in the large-message regime I/OAT accelerates.
	keys := flag.Int("keys", 1<<17, "keys per rank")
	iters := flag.Int("iters", 3, "sort iterations")
	flag.Parse()
	results := figures.NASIS(*keys, *iters)
	fmt.Print(figures.RenderNASIS(results))
}
