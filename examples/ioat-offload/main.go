// ioat-offload reproduces the paper's headline experiment as a
// self-contained program: stream large messages with and without
// I/OAT copy offload and compare throughput and receive-side CPU use
// (Sections IV-B.1 and IV-B.2).
package main

import (
	"fmt"

	"omxsim/cluster"
	"omxsim/internal/cpu"
	"omxsim/openmx"
	"omxsim/sim"
)

const (
	msgSize = 4 << 20
	rounds  = 8
)

func main() {
	fmt.Printf("streaming %d x %d MiB, Open-MX receive path:\n\n", rounds, msgSize>>20)
	plainTput, plainCPU := stream(false)
	ioatTput, ioatCPU := stream(true)
	fmt.Printf("%-22s %12s %14s\n", "configuration", "MiB/s", "recv CPU busy")
	fmt.Printf("%-22s %12.0f %13.0f%%\n", "memcpy in bottom half", plainTput, plainCPU)
	fmt.Printf("%-22s %12.0f %13.0f%%\n", "I/OAT overlapped copy", ioatTput, ioatCPU)
	fmt.Printf("\nthroughput: %+.0f%%   CPU: %+.0f%%   (paper: +30%% throughput, ~-40%% CPU)\n",
		(ioatTput/plainTput-1)*100, (ioatCPU/plainCPU-1)*100)
}

func stream(ioat bool) (mibps, cpuPct float64) {
	c := cluster.New(nil)
	n0, n1 := c.NewHost("sender"), c.NewHost("receiver")
	cluster.Link(n0, n1)
	cfg := openmx.Config{IOAT: ioat, RegCache: true}
	e0 := openmx.Attach(n0, cfg).Open(0, 2)
	e1 := openmx.Attach(n1, cfg).Open(0, 2)

	src, dst := n0.Alloc(msgSize), n1.Alloc(msgSize)
	src.Fill(7)
	recvSys := n1.Machine().Sys
	var t0, t1 sim.Time
	c.Go("rx", func(p *sim.Proc) {
		for i := 0; i < rounds; i++ {
			if i == 1 { // skip the cold first round
				recvSys.ResetAccounting()
				t0 = p.Now()
			}
			r := e1.IRecv(p, 1, ^uint64(0), dst, 0, msgSize)
			e1.Wait(p, r)
		}
		t1 = p.Now()
	})
	c.Go("tx", func(p *sim.Proc) {
		for i := 0; i < rounds; i++ {
			s := e0.ISend(p, e1.Addr(), 1, src, 0, msgSize)
			e0.Wait(p, s)
		}
	})
	if c.Run() != 0 {
		panic("deadlock")
	}
	if !cluster.Equal(src, dst) {
		panic("payload corrupted")
	}
	elapsed := (t1 - t0).Seconds()
	mibps = float64(msgSize) * float64(rounds-1) / 1024 / 1024 / elapsed
	busy := recvSys.BusyByCategory()
	total := busy[cpu.UserLib] + busy[cpu.DriverCmd] + busy[cpu.BHProc] +
		busy[cpu.BHCopy] + busy[cpu.IOATSubmit]
	cpuPct = float64(total) / float64(t1-t0) * 100
	return mibps, cpuPct
}
