// Quickstart: build a two-node 10 GbE testbed, attach Open-MX with
// I/OAT copy offload, and exchange a message.
package main

import (
	"fmt"

	"omxsim/cluster"
	"omxsim/openmx"
	"omxsim/sim"
)

func main() {
	// Two dual quad-core Clovertown hosts, back to back (no switch),
	// exactly like the paper's testbed.
	c := cluster.New(nil)
	n0, n1 := c.NewHost("node0"), c.NewHost("node1")
	cluster.Link(n0, n1)

	// Open-MX on both, with asynchronous I/OAT copy offload on the
	// receive path.
	cfg := openmx.Config{IOAT: true, RegCache: true}
	s0, s1 := openmx.Attach(n0, cfg), openmx.Attach(n1, cfg)
	e0, e1 := s0.Open(0, 2), s1.Open(0, 2)

	const size = 1 << 20
	src, dst := n0.Alloc(size), n1.Alloc(size)
	src.Fill(42)

	var received sim.Time
	c.Go("receiver", func(p *sim.Proc) {
		r := e1.IRecv(p, 0xC0FFEE, ^uint64(0), dst, 0, size)
		e1.Wait(p, r)
		received = p.Now()
		fmt.Printf("receiver: got %d bytes from %s/%d (match %#x)\n",
			r.Len(), r.Sender().Host, r.Sender().EP, r.Match())
	})
	c.Go("sender", func(p *sim.Proc) {
		r := e0.ISend(p, e1.Addr(), 0xC0FFEE, src, 0, size)
		e0.Wait(p, r)
		fmt.Printf("sender:   send completed at %v\n", p.Now())
	})
	if blocked := c.Run(); blocked != 0 {
		panic("deadlock")
	}

	fmt.Printf("payload intact: %v\n", cluster.Equal(src, dst))
	fmt.Printf("1 MiB delivered in %v → %.0f MiB/s\n",
		received, float64(size)/1024/1024/received.Seconds())
	fmt.Printf("receiver I/OAT descriptors submitted: %d\n", s1.Stats().IOATSubmits)
	fmt.Printf("skbuffs freed by the cleanup routine: %d\n", s1.Stats().CleanupFrees)
}
