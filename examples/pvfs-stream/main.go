// pvfs-stream models the workload that motivated Open-MX's BlueGene/P
// deployment: parallel file-system traffic. Three compute nodes
// running Open-MX stream file chunks through a switch to one I/O node
// running native MXoE, first with memcpy receive copies on the reading
// side, then with I/OAT offload — showing why copy offload matters for
// storage servers (the paper cites PVFS file transfers as the
// established I/OAT use case).
package main

import (
	"fmt"

	"omxsim/cluster"
	"omxsim/mxoe"
	"omxsim/openmx"
	"omxsim/sim"
)

const (
	chunk  = 1 << 20 // 1 MiB file chunks
	chunks = 6       // per compute node
	nodes  = 3
)

func main() {
	fmt.Printf("PVFS-style streaming: %d compute nodes write %d x 1 MiB chunks each,\n", nodes, chunks)
	fmt.Println("then read them back (read path = compute-node receive copies).")
	fmt.Println()
	for _, ioat := range []bool{false, true} {
		elapsed := run(ioat)
		total := float64(nodes*chunks*chunk*2) / (1 << 20) // write + read
		label := "memcpy receive"
		if ioat {
			label = "I/OAT receive"
		}
		fmt.Printf("%-16s %8.2f ms   aggregate %7.0f MiB/s\n",
			label, float64(elapsed)/1e6, total/elapsed.Seconds())
	}
}

func run(ioat bool) sim.Duration {
	c := cluster.New(nil)
	sw := c.NewSwitch()
	io := c.NewHost("ionode")
	sw.Attach(io)
	ioEP := mxoe.Attach(io, mxoe.Config{RegCache: true}).Open(0, 2)

	cfg := openmx.Config{IOAT: ioat, RegCache: true}
	var computeEPs []openmx.Endpoint
	var computeHosts []*cluster.Host
	for i := 0; i < nodes; i++ {
		h := c.NewHost(fmt.Sprintf("compute%d", i))
		sw.Attach(h)
		computeEPs = append(computeEPs, openmx.Attach(h, cfg).Open(0, 2))
		computeHosts = append(computeHosts, h)
	}

	// The I/O node serves all clients: for each client chunk, receive
	// the write, then send it back when the client reads.
	store := io.Alloc(nodes * chunks * chunk)
	c.Go("io-server", func(p *sim.Proc) {
		// Phase 1: collect all writes (any source order).
		for i := 0; i < nodes*chunks; i++ {
			r := ioEP.IRecv(p, 0, 0, store, i*chunk, chunk) // wildcard
			ioEP.Wait(p, r)
		}
		// Phase 2: serve reads in store order.
		for i := 0; i < nodes*chunks; i++ {
			node := i / chunks
			s := ioEP.ISend(p, computeEPs[node].Addr(), uint64(0x1000+i), store, i*chunk, chunk)
			ioEP.Wait(p, s)
		}
	})

	var finished sim.Time
	doneCount := 0
	for n := 0; n < nodes; n++ {
		n := n
		ep := computeEPs[n]
		h := computeHosts[n]
		c.Go(fmt.Sprintf("client%d", n), func(p *sim.Proc) {
			out := h.Alloc(chunk)
			in := h.Alloc(chunk)
			out.Fill(byte(n + 1))
			for i := 0; i < chunks; i++ {
				s := ep.ISend(p, ioEP.Addr(), uint64(n*chunks+i), out, 0, chunk)
				ep.Wait(p, s)
			}
			for i := 0; i < chunks; i++ {
				r := ep.IRecv(p, uint64(0x1000+n*chunks+i), ^uint64(0), in, 0, chunk)
				ep.Wait(p, r)
			}
			doneCount++
			if p.Now() > finished {
				finished = p.Now()
			}
		})
	}
	if c.Run() != 0 {
		panic("deadlock")
	}
	if doneCount != nodes {
		panic("not all clients finished")
	}
	return finished
}
