// shared-memory demonstrates Open-MX intra-node communication
// (Section III-C / Figure 10): the driver's one-copy transfer between
// two process address spaces, with the copy either performed by the
// CPU (whose speed depends on which caches the processes share) or
// offloaded to the I/OAT engine.
package main

import (
	"fmt"

	"omxsim/cluster"
	"omxsim/openmx"
	"omxsim/sim"
)

func main() {
	fmt.Println("Open-MX one-copy shared-memory ping-pong, 4 MiB messages:")
	fmt.Println()
	fmt.Printf("%-44s %10s\n", "configuration", "MiB/s")
	for _, cfg := range []struct {
		name  string
		coreA int
		coreB int
		ioat  bool
	}{
		{"memcpy, same dual-core subchip (shared L2)", 0, 1, false},
		{"memcpy, same socket, different L2", 0, 2, false},
		{"memcpy, different sockets", 0, 4, false},
		{"I/OAT offloaded copy (placement-independent)", 0, 4, true},
	} {
		fmt.Printf("%-44s %10.0f\n", cfg.name, pingpong(cfg.coreA, cfg.coreB, cfg.ioat))
	}
	fmt.Println("\n(paper: ≈6 GiB/s shared-L2 below 1 MiB, ≈1.2 GiB/s beyond or")
	fmt.Println(" cross-socket, ≈2.3 GiB/s with I/OAT — Figure 10)")
}

func pingpong(coreA, coreB int, ioat bool) float64 {
	const size = 4 << 20
	c := cluster.New(nil)
	h := c.NewHost("node")
	st := openmx.Attach(h, openmx.Config{IOATShm: ioat})
	ea, eb := st.Open(0, coreA), st.Open(1, coreB)
	a0, a1 := h.Alloc(size), h.Alloc(size)
	b0, b1 := h.Alloc(size), h.Alloc(size)
	const iters = 6
	var t0, t1 sim.Time
	c.Go("B", func(p *sim.Proc) {
		for i := 0; i <= iters; i++ {
			r := eb.IRecv(p, 1, ^uint64(0), b0, 0, size)
			eb.Wait(p, r)
			b1.Produce(coreB)
			s := eb.ISend(p, ea.Addr(), 2, b1, 0, size)
			eb.Wait(p, s)
		}
	})
	c.Go("A", func(p *sim.Proc) {
		for i := 0; i <= iters; i++ {
			if i == 1 {
				t0 = p.Now()
			}
			a0.Produce(coreA)
			s := ea.ISend(p, eb.Addr(), 1, a0, 0, size)
			ea.Wait(p, s)
			r := ea.IRecv(p, 2, ^uint64(0), a1, 0, size)
			ea.Wait(p, r)
		}
		t1 = p.Now()
	})
	if c.Run() != 0 {
		panic("deadlock")
	}
	half := float64(t1-t0) / float64(2*iters) / 1e9
	return float64(size) / 1024 / 1024 / half
}
