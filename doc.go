// Package omxsim is a full reproduction, as a deterministic
// discrete-event simulation in pure Go, of
//
//	Brice Goglin, "Improving Message Passing over Ethernet with
//	I/OAT Copy Offload in Open-MX", IEEE Cluster 2008.
//
// The module implements the complete Open-MX stack (user library +
// kernel driver with eager, rendezvous-pull and one-copy local paths,
// retransmission and a registration cache), the I/OAT DMA engine, the
// Linux generic-Ethernet receive path (skbuff rings, interrupts, NAPI
// bottom halves), a 10 GbE wire, the native MXoE baseline it is
// wire-compatible with, an MPI layer and the Intel MPI Benchmarks —
// everything needed to regenerate the paper's Figures 3 and 5–12 and
// its Section IV-A microbenchmark numbers.
//
// # Package layout
//
// The simulation core, bottom-up:
//
//   - sim — the discrete-event engine: virtual time on a
//     zero-allocation calendar event queue, cooperative processes,
//     cancellable timers, daemons, the Run loop every experiment
//     drives. sim/trace renders recorded spans, instants and counters
//     as deterministic Chrome trace_event JSON and validates the
//     format.
//   - platform — the modelled hardware (dual quad-core Clovertown
//     hosts, memory and cache copy-rate models, the paper's testbed).
//   - internal/... — the machine model (cpu, hostmem, memmodel, bus,
//     nic, wire, ioat) and the protocol stacks (core is the Open-MX
//     library + driver, internal/mxoe the native firmware baseline,
//     whose NIC also runs whole collectives — barrier, bcast,
//     allreduce, scan — as firmware-resident tree state machines with
//     segment combining, posted as one descriptor and completed as
//     one event). hostmem keeps the per-buffer memory-hierarchy
//     ledgers — span coverage per L2 domain and L1, the DMA-cold and
//     DCA-resident states, the NUMA home socket, and the per-stack
//     LRU registration cache — which memmodel.RateFor prices into
//     copy rates (DCA blend, wrong-socket and snoop penalties,
//     cross-socket, L1/L2/half-warm); nic and ioat charge
//     NUMA-distance deposit costs and mark every deposit
//     (WrittenByDMA, or WrittenByDCA on a platform.ClovertownDCA
//     machine, where the NIC pushes receive-ring lines into the
//     interrupt core's LLC). Both stacks share the
//     adaptive-transport tier in
//     internal/proto (Config.Adaptive): per-peer Jacobson/Karels RTT
//     estimation driving every retransmit timeout, AIMD pull windows
//     bounded by the lane count, and load-based IRQ steering from CPU
//     ledger deltas on multi-NIC hosts — with Adaptive off the static
//     path is bit-identical to before the tier existed.
//     internal/cpu models each core as a serial two-priority work
//     queue with per-category busy ledgers (user library, driver,
//     bottom-half processing and copies, I/OAT submission,
//     application compute) and deterministic Stats snapshots.
//   - cluster — hosts, links and switches composed into a testbed
//     from a declarative cluster.Topology (cluster.Build wires
//     back-to-back pairs, single switches, or 2-tier fat trees with
//     flow-sticky ECMP trunks), plus the network-impairment surface:
//     seeded deterministic
//     loss/reorder/duplication/jitter/rate-asymmetry profiles on any
//     link direction or switch port (cluster.Impair),
//     bounded switch output queues with tail-drop (cluster.Queue),
//     background cross-traffic generators (StartCrossTraffic) and
//     the NetStats counter snapshot. Hosts can aggregate several
//     NICs (cluster.MultiNIC): Link cables them lane by lane, a
//     switch gives each its own port, the stacks stripe eager
//     fragments and pull blocks across them, and NetStats attributes
//     every counter per NIC and per lane.
//   - openmx, mxoe — the public endpoint APIs over either stack,
//     both surfacing the host's CPU ledgers as a deterministic
//     CPUStats snapshot (Stack.CPUStats / ResetCPUStats). openmx
//     additionally exposes the adaptive threshold autotuner: either
//     AutoTuned(platform) for a fully probed configuration, or
//     Config.AutoTune to run ProbeThresholds when the stack attaches
//     — it picks the eager→rendezvous switch, the local
//     memcpy→I/OAT switch and the offload floor from the platform's
//     cost-curve crossovers (within 2× of every constant the paper
//     chose by hand on Clovertown).
//   - mpi — an MPI layer over the transport-neutral endpoint
//     interface: point-to-point plus the full collective set
//     (Barrier, Bcast, Reduce, Allreduce, ReduceScatter,
//     Gather/Scatter, Allgather(v), Alltoall(v)), each with two
//     algorithm variants (binomial tree / recursive doubling versus
//     ring / Bruck / scatter-allgather) selected by message and
//     world size through mpi.Tuning — which also resolves the
//     execution tier per call (Tuning.Offload auto/host/nic): on a
//     collective-capable stack, Barrier/Bcast/Allreduce/Scan can run
//     entirely in NIC firmware, with pinned BarrierNIC/BcastNIC/
//     AllreduceNIC/ScanNIC variants exported beside the host
//     algorithms.
//   - imb — the Intel-MPI-Benchmarks patterns (the Figure 12 set
//     plus Gather, Scatter and Barrier) with IMB timing conventions,
//     plus imb.Sweep for sharding whole benchmark runs across a
//     worker pool.
//   - metrics — series/tables the experiments produce, with exact
//     equality helpers for determinism guardrails.
//   - runner — the concurrent experiment orchestrator: a bounded
//     worker pool with deterministic result ordering, per-job panic
//     capture, a single-flight result cache keyed by canonical
//     config hash, and progress/ETA reporting.
//   - figures — every figure and table of the paper's evaluation,
//     each swept point an independent runner job; the Sections
//     registry names each renderable section, and SweepOn is the
//     error-returning sweep entry services use.
//   - internal/simd — the omxsimd service: a multi-tenant HTTP job
//     API (named clusters from the declarative topology vocabulary,
//     sweep/figure jobs on the shared pool, SSE progress, per-tenant
//     quotas, result caching, graceful drain).
//   - cmd/omxsim, cmd/omx-imb, cmd/omx-pingpong — the CLIs — and
//     cmd/omxsimd, the service daemon.
//
// # Reproducing the evaluation
//
// Every figure generator builds one isolated testbed per measured
// point and shards the points across runner.Default(), so
// reproduction wall time scales with the host's cores while the
// output stays byte-identical to a serial run (the simulation itself
// is deterministic virtual time — host parallelism cannot perturb
// it). Regenerate everything with
//
//	go run ./cmd/omxsim all
//
// or one figure at a time (fig3, fig7 … fig12, micro, timeline,
// nasis, coll, loss, avail, ablate, multinic, fattree, nicoll,
// adaptive, dca); add -progress for
// live sweep progress and ETA, and -plot for ASCII plots. The
// timeline figure also exports as Chrome trace_event JSON via
//
//	go run ./cmd/omxsim trace -o rx.json
//
// (open in chrome://tracing or Perfetto). Several
// figures go beyond the paper: multinic measures link-aggregated
// striping — ping-pong goodput across message size × {1,2,4} NICs ×
// {memcpy, I/OAT}, showing where the pull window must grow from the
// paper's fixed two blocks to two blocks per NIC;
// coll sweeps collective latency versus message
// size with I/OAT offload on/off at 4–16 processes (larger worlds
// connected through a simulated Ethernet switch); loss sweeps
// frame-loss rate × message size on a seeded impaired link, reporting
// goodput, p50/p99 latency and retransmission counts for both stacks
// — the reliability paths (cumulative acks with wraparound-safe
// serial arithmetic, duplicate suppression, exponential-backoff
// retransmission, pull-block retry) recover everything
// deterministically; fattree scales the collectives to 64–512 ranks
// on a 2-tier leaf/spine fat tree (flow-sticky ECMP trunks, 4:1
// oversubscription) against a 1-switch baseline where one fits;
// nicoll compares host-driven collective algorithms against the MXoE
// firmware state machines at fat-tree scale, reporting latency,
// non-compute host CPU per collective and achieved overlap under
// injected compute; adaptive pits the self-tuning transport
// (Config.Adaptive) against the hand-tuned static policies across
// {0,1,5%} frame loss × {1,2,4} NICs × {memcpy, I/OAT} — adaptive
// matches the best static everywhere and wins 1.3–2.5× wherever the
// wire is lossy; dca follows a received payload through the memory
// hierarchy — a ping-pong whose receiver immediately consumes each
// payload, sweeping {memcpy, I/OAT, DCA, I/OAT+warm} receive paths ×
// consumer placement × size, showing the bottom-half copy doubling as
// a prefetch, DCA extending that win, and the offload's goodput
// advantage returning once the consumer sits cross-socket; and avail
// measures the paper's headline claim
// directly — a ping-pong with injected compute on the interrupt core,
// reporting achieved overlap %, non-compute host CPU µs per MiB and
// goodput for memcpy versus I/OAT receive paths, remote and local,
// with the autotuner's chosen thresholds in the footer. The IMB suite
// runs standalone via
//
//	go run ./cmd/omx-imb -test all -ppn 2
//	go run ./cmd/omx-imb -test allreduce,alltoall,bcast -nodes 8 -ppn 2
//
// Start with package cluster to build a testbed, package openmx (or
// mxoe) for endpoints, and package figures to regenerate the paper's
// evaluation. See README.md for the CI gates and Makefile targets,
// and docs/ARCHITECTURE.md for the layer diagram and seven event-flow
// walkthroughs naming the functions and costs on every hop.
package omxsim
