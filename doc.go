// Package omxsim is a full reproduction, as a deterministic
// discrete-event simulation in pure Go, of
//
//	Brice Goglin, "Improving Message Passing over Ethernet with
//	I/OAT Copy Offload in Open-MX", IEEE Cluster 2008.
//
// The module implements the complete Open-MX stack (user library +
// kernel driver with eager, rendezvous-pull and one-copy local paths,
// retransmission and a registration cache), the I/OAT DMA engine, the
// Linux generic-Ethernet receive path (skbuff rings, interrupts, NAPI
// bottom halves), a 10 GbE wire, the native MXoE baseline it is
// wire-compatible with, an MPI layer and the Intel MPI Benchmarks —
// everything needed to regenerate the paper's Figures 3 and 5–12 and
// its Section IV-A microbenchmark numbers.
//
// Start with package cluster to build a testbed, package openmx (or
// mxoe) for endpoints, and package figures to regenerate the paper's
// evaluation. See README.md, DESIGN.md and EXPERIMENTS.md.
package omxsim
